package reason

import (
	"context"
	"runtime"
	"sync"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Validator is a prepared validation context for repeated checking of
// one graph against one rule set: the graph is frozen once into a
// read-only snapshot (interned symbols, label-grouped adjacency, and
// the attribute-value index folded in), pattern matching plans are
// compiled once against it, and constant literals of each antecedent
// are pushed down into the index — the match enumeration for a rule
// like φ₁ (y.type = "video game" → ...) starts from the indexed
// video-game nodes instead of scanning every product.
//
// The Validator reflects the snapshot it was built on; when the graph
// moves, Rebase follows a delta-maintained snapshot at the cost of the
// rule set, not the graph. It is immutable (the pushed-down pivots are
// materialized lazily under a sync.Once) and safe for concurrent use.
type Validator struct {
	snap  *graph.Snapshot
	sigma ged.Set
	plans []*pattern.Plan
	// pivots[i] is the pushed-down access path for Σ[i], if any; built
	// on first full Run so that incremental-only validators never pay
	// for the value postings.
	pivotOnce sync.Once
	pivots    []*pivotPlan
}

// pivotPlan records the most selective constant-literal access path.
type pivotPlan struct {
	variable pattern.Var
	cands    []graph.NodeID
}

// NewValidator prepares g for repeated validation against sigma.
func NewValidator(g *graph.Graph, sigma ged.Set) *Validator {
	return NewValidatorOn(g.Freeze(), sigma)
}

// NewValidatorOn prepares a validation context over an existing
// snapshot, sharing it instead of re-freezing. Plans are compiled with
// every constant literal of the antecedent pushed down (see
// PushdownFilters): violating-match enumeration skips literal-failing
// bindings inside the search, and the post-match antecedent check only
// ever sees matches that already satisfy the pushable literals.
func NewValidatorOn(snap *graph.Snapshot, sigma ged.Set) *Validator {
	v := &Validator{
		snap:  snap,
		sigma: sigma,
		plans: make([]*pattern.Plan, len(sigma)),
	}
	for i, d := range sigma {
		v.plans[i] = pattern.CompileFiltered(d.Pattern, snap, PushdownFilters(d))
	}
	return v
}

// PushdownFilters extracts the pushable antecedent literals of d: the
// constant literals x.A = c, which the matcher turns into posting-list
// intersections on snapshot hosts and bind-time attribute checks on
// mutable ones. Variable and id literals relate two bindings and stay
// post-match checks; so does every consequent literal (a violation is
// a match that *fails* one).
func PushdownFilters(d *ged.GED) []pattern.ConstFilter {
	var fs []pattern.ConstFilter
	for _, l := range d.X {
		k, ok := l.Kind()
		if !ok || k != ged.ConstLiteral {
			continue
		}
		fs = append(fs, pattern.ConstFilter{Var: l.Left.Var, Attr: l.Left.Attr, Value: l.Right.Const})
	}
	return fs
}

// Rebase returns a validator over snap, reusing the receiver's compiled
// plans when snap shares the receiver's snapshot lineage (it was
// produced by graph.Snapshot.Apply) — the per-delta cost is then
// proportional to the rule set. An unrelated snapshot falls back to a
// full recompile.
func (v *Validator) Rebase(snap *graph.Snapshot) *Validator {
	if snap == v.snap {
		return v
	}
	if snap.Lineage() != v.snap.Lineage() {
		return NewValidatorOn(snap, v.sigma)
	}
	nv := &Validator{
		snap:  snap,
		sigma: v.sigma,
		plans: make([]*pattern.Plan, len(v.plans)),
	}
	for i, pl := range v.plans {
		nv.plans[i] = pl.Rebind(snap)
	}
	return nv
}

// Snapshot returns the snapshot the validator is bound to.
func (v *Validator) Snapshot() *graph.Snapshot { return v.snap }

// ensurePivots materializes the constant-literal access paths; first
// use triggers the snapshot's lazy value postings.
func (v *Validator) ensurePivots() {
	v.pivotOnce.Do(func() {
		pv := make([]*pivotPlan, len(v.sigma))
		for i, d := range v.sigma {
			pv[i] = choosePivot(d, v.snap)
		}
		v.pivots = pv
	})
}

// choosePivot selects the most selective constant literal of d's
// antecedent whose index postings beat the label-based candidate set.
func choosePivot(d *ged.GED, snap *graph.Snapshot) *pivotPlan {
	var best *pivotPlan
	bestN := -1
	for _, l := range d.X {
		k, ok := l.Kind()
		if !ok || k != ged.ConstLiteral {
			continue
		}
		n := snap.Selectivity(l.Left.Attr, l.Right.Const)
		if bestN < 0 || n < bestN {
			bestN = n
			best = &pivotPlan{
				variable: l.Left.Var,
				cands:    snap.Lookup(l.Left.Attr, l.Right.Const),
			}
		}
	}
	if best == nil {
		return nil
	}
	// Only worth it when more selective than the label index.
	if bestN >= snap.LabelCount(d.Pattern.Label(best.variable)) {
		return nil
	}
	return best
}

// Run finds violations, up to limit (≤ 0 means all). Results match
// Validate's exactly.
func (v *Validator) Run(limit int) []Violation {
	v.ensurePivots()
	var out []Violation
	for i, d := range v.sigma {
		d := d
		collect := func(m pattern.Match) bool {
			for _, l := range d.X {
				if !HoldsInGraph(v.snap, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(v.snap, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		}
		if p := v.pivots[i]; p != nil {
			v.plans[i].ForEachPivot(p.variable, p.cands, collect)
		} else {
			v.plans[i].ForEachBound(nil, collect)
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// RunCtx is sequential full validation through the prepared plans, with
// cooperative cancellation. It mirrors ValidateOnCtx exactly — same
// enumeration, same result order — but skips the per-call plan
// compilation, which is what the Engine's plan cache buys.
func (v *Validator) RunCtx(ctx context.Context, limit int) ([]Violation, error) {
	var out []Violation
	stop := func() bool { return ctx.Err() != nil }
	for i, d := range v.sigma {
		d := d
		v.plans[i].ForEachBoundCancel(nil, stop, func(m pattern.Match) bool {
			if ctx.Err() != nil {
				return false
			}
			for _, l := range d.X {
				if !HoldsInGraph(v.snap, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(v.snap, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		})
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// RunParallelCtx is data-parallel full validation through the prepared
// plans; semantics and determinism match ValidateParallelOnCtx.
func (v *Validator) RunParallelCtx(ctx context.Context, limit, workers int) ([]Violation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return v.RunCtx(ctx, limit)
	}
	v.ensurePivots()
	return validateParallel(ctx, v.snap, v.sigma, limit, workers,
		func(i int) *pattern.Plan { return v.plans[i] },
		func(i int) (pattern.Var, []graph.NodeID) {
			if p := v.pivots[i]; p != nil {
				return p.variable, p.cands
			}
			return pivotVar(v.sigma[i].Pattern, v.snap)
		})
}

// TouchingCtx finds the violations whose match involves at least one of
// the given nodes — ValidateTouchingOnCtx through the prepared plans.
func (v *Validator) TouchingCtx(ctx context.Context, nodes []graph.NodeID, limit int) ([]Violation, error) {
	if len(nodes) == 0 {
		return nil, ctx.Err()
	}
	return validateTouching(ctx, v.snap, v.sigma, nodes, limit,
		func(i int) *pattern.Plan { return v.plans[i] })
}

// Satisfies reports G ⊨ Σ through the prepared context.
func (v *Validator) Satisfies() bool { return len(v.Run(1)) == 0 }
