package reason

import (
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Validator is a prepared validation context for repeated checking of
// one graph against one rule set: the graph is frozen once into a
// read-only snapshot (interned symbols, label-grouped CSR adjacency,
// and the attribute-value index folded in), pattern matching plans are
// compiled once against it, and constant literals of each antecedent
// are pushed down into the index — the match enumeration for a rule
// like φ₁ (y.type = "video game" → ...) starts from the indexed
// video-game nodes instead of scanning every product.
//
// The Validator reflects the graph at construction time; if the graph
// is mutated, build a new Validator (or use ValidateTouching for
// localized updates). It is immutable and safe for concurrent use.
type Validator struct {
	snap  *graph.Snapshot
	sigma ged.Set
	plans []*pattern.Plan
	// pivots[i] is the pushed-down access path for Σ[i], if any.
	pivots []*pivotPlan
}

// pivotPlan records the most selective constant-literal access path.
type pivotPlan struct {
	variable pattern.Var
	cands    []graph.NodeID
}

// NewValidator prepares g for repeated validation against sigma.
func NewValidator(g *graph.Graph, sigma ged.Set) *Validator {
	return NewValidatorOn(g.Freeze(), sigma)
}

// NewValidatorOn prepares a validation context over an existing
// snapshot, sharing it instead of re-freezing.
func NewValidatorOn(snap *graph.Snapshot, sigma ged.Set) *Validator {
	v := &Validator{
		snap:   snap,
		sigma:  sigma,
		plans:  make([]*pattern.Plan, len(sigma)),
		pivots: make([]*pivotPlan, len(sigma)),
	}
	for i, d := range sigma {
		v.plans[i] = pattern.Compile(d.Pattern, snap)
		v.pivots[i] = choosePivot(d, snap)
	}
	return v
}

// choosePivot selects the most selective constant literal of d's
// antecedent whose index postings beat the label-based candidate set.
func choosePivot(d *ged.GED, snap *graph.Snapshot) *pivotPlan {
	var best *pivotPlan
	bestN := -1
	for _, l := range d.X {
		k, ok := l.Kind()
		if !ok || k != ged.ConstLiteral {
			continue
		}
		n := snap.Selectivity(l.Left.Attr, l.Right.Const)
		if bestN < 0 || n < bestN {
			bestN = n
			best = &pivotPlan{
				variable: l.Left.Var,
				cands:    snap.Lookup(l.Left.Attr, l.Right.Const),
			}
		}
	}
	if best == nil {
		return nil
	}
	// Only worth it when more selective than the label index.
	if bestN >= snap.LabelCount(d.Pattern.Label(best.variable)) {
		return nil
	}
	return best
}

// Run finds violations, up to limit (≤ 0 means all). Results match
// Validate's exactly.
func (v *Validator) Run(limit int) []Violation {
	var out []Violation
	for i, d := range v.sigma {
		d := d
		collect := func(m pattern.Match) bool {
			for _, l := range d.X {
				if !HoldsInGraph(v.snap, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(v.snap, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		}
		if p := v.pivots[i]; p != nil {
			v.plans[i].ForEachPivot(p.variable, p.cands, collect)
		} else {
			v.plans[i].ForEachBound(nil, collect)
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Satisfies reports G ⊨ Σ through the prepared context.
func (v *Validator) Satisfies() bool { return len(v.Run(1)) == 0 }
