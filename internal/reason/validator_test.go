package reason

import (
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// TestValidatorMatchesValidate: the indexed validator and the plain one
// agree on random instances.
func TestValidatorMatchesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 40; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		want := canonViolations(Validate(g, sigma, 0), sigma)
		got := canonViolations(NewValidator(g, sigma).Run(0), sigma)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d violations", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: violation sets differ", trial)
			}
		}
	}
}

func TestValidatorUsesIndexPivot(t *testing.T) {
	// φ₁'s antecedent (y.type = "video game") is rare in a graph with
	// many products, so the pivot must come from the attribute index.
	g, _ := gen.KnowledgeBase(17, 100, 0.1)
	sigma := ged.Set{gen.PaperPhi1()}
	v := NewValidator(g, sigma)
	v.ensurePivots() // built lazily on first Run
	if v.pivots[0] == nil {
		t.Skip("index pivot not selected; label index already tighter")
	}
	if v.pivots[0].variable != "y" {
		t.Errorf("pivot variable = %s, want y", v.pivots[0].variable)
	}
	// Correctness regardless.
	if len(v.Run(0)) != len(Validate(g, sigma, 0)) {
		t.Error("indexed validation disagrees")
	}
}

func TestValidatorRepeatedRuns(t *testing.T) {
	g, _ := gen.KnowledgeBase(19, 40, 0.2)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2()}
	v := NewValidator(g, sigma)
	a := v.Run(0)
	b := v.Run(0)
	if len(a) != len(b) {
		t.Error("repeated runs must agree")
	}
	if v.Satisfies() != (len(a) == 0) {
		t.Error("Satisfies disagrees with Run")
	}
}

func TestValidatorLimit(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p")
	phi := ged.New("f", q,
		[]ged.Literal{ged.ConstLit("x", "k", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "m", graph.Int(2))})
	g := graph.New()
	for i := 0; i < 20; i++ {
		g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	}
	v := NewValidator(g, ged.Set{phi})
	if n := len(v.Run(7)); n != 7 {
		t.Errorf("limit 7: got %d", n)
	}
}

func TestAttrIndex(t *testing.T) {
	g := graph.New()
	a := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	b := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	c := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(2)})
	idx := graph.BuildAttrIndex(g)
	got := idx.Lookup("k", graph.Int(1))
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Lookup = %v", got)
	}
	if idx.Selectivity("k", graph.Int(2)) != 1 {
		t.Error("selectivity wrong")
	}
	if idx.Lookup("k", graph.Int(9)) != nil {
		t.Error("missing value must return nil")
	}
	if !idx.HasAttr("k") || idx.HasAttr("zz") {
		t.Error("HasAttr wrong")
	}
	_ = c
}
