// Package relational encodes relational databases and their classical
// dependencies — FDs, CFDs, EGDs and denial constraints — as graphs and
// graph dependencies, following Section 3 (special case 5) of
// "Dependencies for Graphs" (Fan & Lu, PODS 2017).
//
// Tuples become nodes labeled with their relation name and carrying one
// attribute per column; an FD R(X → Y) becomes a GED over a two-node
// pattern; an EGD ∀z̄(φ(z̄) → y1 = y2) becomes the pair (φ_R, φ_E) of
// GFDs exactly as the paper constructs it; a denial constraint becomes a
// GDC. These encodings let the GED machinery subsume the relational
// theory, which the tests exercise by round-tripping violations.
package relational

import (
	"fmt"

	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Schema is a relation schema R(A1, ..., An).
type Schema struct {
	Name  string
	Attrs []graph.Attr
}

// Tuple is one row, keyed by attribute.
type Tuple map[graph.Attr]graph.Value

// Relation is an instance of a schema.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// Database is a set of relations.
type Database []*Relation

// Encode represents the database as a graph: one node per tuple, labeled
// with the relation name and carrying the tuple as attributes. Relations
// are connected only through value equality, exactly as in the paper's
// encoding (the pattern graphs have no edges).
func Encode(db Database) *graph.Graph {
	g := graph.New()
	for _, r := range db {
		for _, t := range r.Tuples {
			id := g.AddNode(graph.Label(r.Schema.Name))
			for _, a := range r.Schema.Attrs {
				if v, ok := t[a]; ok {
					g.SetAttr(id, a, v)
				}
			}
		}
	}
	return g
}

// FD is a relational functional dependency R(LHS → RHS).
type FD struct {
	Rel string
	LHS []graph.Attr
	RHS []graph.Attr
}

// ToGED encodes the FD as a GED over a two-node pattern: two R-tuples
// agreeing on LHS must agree on RHS.
func (f FD) ToGED() *ged.GED {
	q := pattern.New()
	q.AddVar("s", graph.Label(f.Rel)).AddVar("t", graph.Label(f.Rel))
	var xs, ys []ged.Literal
	for _, a := range f.LHS {
		xs = append(xs, ged.VarLit("s", a, "t", a))
	}
	for _, a := range f.RHS {
		ys = append(ys, ged.VarLit("s", a, "t", a))
	}
	return ged.New(fmt.Sprintf("fd:%s(%v->%v)", f.Rel, f.LHS, f.RHS), q, xs, ys)
}

// CFDPattern is one pattern tuple of a CFD tableau: a constant per
// attribute, or nil for the unnamed variable '_'.
type CFDPattern map[graph.Attr]*graph.Value

// CFD is a conditional functional dependency (R: LHS → RHS, tp) with a
// single pattern tuple tp, following Fan et al. (TODS 2008).
type CFD struct {
	Rel     string
	LHS     []graph.Attr
	RHS     []graph.Attr
	Pattern CFDPattern
}

// ToGEDs encodes the CFD as GEDs. Constants in the LHS pattern become
// antecedent constant literals; constants in the RHS become consequent
// constant literals; unnamed variables become variable literals pairing
// the two tuple copies.
func (c CFD) ToGEDs() []*ged.GED {
	q := pattern.New()
	q.AddVar("s", graph.Label(c.Rel)).AddVar("t", graph.Label(c.Rel))
	var xs, ys []ged.Literal
	for _, a := range c.LHS {
		if cv := c.Pattern[a]; cv != nil {
			xs = append(xs, ged.ConstLit("s", a, *cv), ged.ConstLit("t", a, *cv))
		} else {
			xs = append(xs, ged.VarLit("s", a, "t", a))
		}
	}
	for _, a := range c.RHS {
		if cv := c.Pattern[a]; cv != nil {
			ys = append(ys, ged.ConstLit("s", a, *cv))
		} else {
			ys = append(ys, ged.VarLit("s", a, "t", a))
		}
	}
	return []*ged.GED{ged.New(fmt.Sprintf("cfd:%s", c.Rel), q, xs, ys)}
}

// Atom is a relation atom R(w1, ..., wn) of an EGD body: Vars[i] names
// the variable bound to the i-th attribute of the schema (variables may
// repeat across atoms to express joins).
type Atom struct {
	Rel  string
	Vars []string
}

// EGD is an equality-generating dependency ∀z̄(φ(z̄) → Y1 = Y2), with φ
// a conjunction of relation atoms; Y1 and Y2 are variables of z̄.
type EGD struct {
	Body   []Atom
	Y1, Y2 string
	// schemas resolves attribute positions.
	Schemas map[string]Schema
}

// ToGEDs encodes the EGD as the paper's pair (φ_R, φ_E): φ_R forces the
// attributes used by the body to exist on every tuple node, and φ_E
// enforces the equality under the join conditions.
func (e EGD) ToGEDs() ([]*ged.GED, error) {
	q := pattern.New()
	// One pattern node per atom, labeled with the relation name; no edges.
	type occ struct {
		v pattern.Var
		a graph.Attr
	}
	varOccs := make(map[string][]occ)
	var rLits []ged.Literal
	for i, at := range e.Body {
		sch, ok := e.Schemas[at.Rel]
		if !ok {
			return nil, fmt.Errorf("relational: unknown relation %s", at.Rel)
		}
		if len(at.Vars) != len(sch.Attrs) {
			return nil, fmt.Errorf("relational: atom %s arity mismatch", at.Rel)
		}
		pv := pattern.Var(fmt.Sprintf("t%d", i))
		q.AddVar(pv, graph.Label(at.Rel))
		for j, w := range at.Vars {
			a := sch.Attrs[j]
			varOccs[w] = append(varOccs[w], occ{v: pv, a: a})
			// φ_R: every used attribute exists.
			rLits = append(rLits, ged.VarLit(pv, a, pv, a))
		}
	}
	phiR := ged.New("egd:attrs", q, nil, rLits)

	// φ_E: join equalities in X, the conclusion equality in Y.
	var xs []ged.Literal
	for _, occs := range varOccs {
		for i := 1; i < len(occs); i++ {
			xs = append(xs, ged.VarLit(occs[0].v, occs[0].a, occs[i].v, occs[i].a))
		}
	}
	o1, ok1 := varOccs[e.Y1]
	o2, ok2 := varOccs[e.Y2]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("relational: conclusion variables must occur in the body")
	}
	phiE := ged.New("egd:eq", q.Clone(), xs,
		[]ged.Literal{ged.VarLit(o1[0].v, o1[0].a, o2[0].v, o2[0].a)})
	return []*ged.GED{phiR, phiE}, nil
}

// DCAtom is one comparison of a denial constraint: either tuple.attr ⊕
// tuple2.attr2 or tuple.attr ⊕ constant.
type DCAtom struct {
	T1    int // index of the first tuple variable
	A1    graph.Attr
	Op    ged.Op
	T2    int // index of the second tuple variable; -1 for a constant
	A2    graph.Attr
	Const graph.Value
}

// DenialConstraint is ¬∃ t1...tk (comparisons), over tuples of the
// given relations (by index).
type DenialConstraint struct {
	Rels  []string
	Atoms []DCAtom
}

// ToGDC encodes the denial constraint as a GDC with a false consequent:
// any match satisfying the comparisons is a violation.
func (d DenialConstraint) ToGDC() *gdc.GDC {
	q := pattern.New()
	vars := make([]pattern.Var, len(d.Rels))
	for i, r := range d.Rels {
		vars[i] = pattern.Var(fmt.Sprintf("t%d", i))
		q.AddVar(vars[i], graph.Label(r))
	}
	var xs []ged.Literal
	for _, at := range d.Atoms {
		if at.T2 < 0 {
			xs = append(xs, ged.Cmp(vars[at.T1], at.A1, at.Op, at.Const))
		} else {
			xs = append(xs, ged.CmpVars(vars[at.T1], at.A1, at.Op, vars[at.T2], at.A2))
		}
	}
	return gdc.New("dc", q, xs, ged.False(vars[0]))
}
