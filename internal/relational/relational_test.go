package relational

import (
	"testing"

	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

func emp(vals ...graph.Value) Tuple {
	attrs := []graph.Attr{"name", "dept", "city", "salary"}
	t := make(Tuple)
	for i, v := range vals {
		t[attrs[i]] = v
	}
	return t
}

func empDB(tuples ...Tuple) Database {
	return Database{{
		Schema: Schema{Name: "emp", Attrs: []graph.Attr{"name", "dept", "city", "salary"}},
		Tuples: tuples,
	}}
}

func TestEncodeDatabase(t *testing.T) {
	db := empDB(
		emp(graph.String("ann"), graph.String("cs"), graph.String("ny"), graph.Int(90)),
		emp(graph.String("bob"), graph.String("cs"), graph.String("la"), graph.Int(80)),
	)
	g := Encode(db)
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("encoded shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "emp" {
		t.Error("tuple nodes must be labeled by relation")
	}
	if v, ok := g.Attr(0, "name"); !ok || !v.Equal(graph.String("ann")) {
		t.Error("tuple attributes must be stored")
	}
}

func TestFDViolationRoundTrip(t *testing.T) {
	// dept → city: two cs employees in different cities violate.
	fd := FD{Rel: "emp", LHS: []graph.Attr{"dept"}, RHS: []graph.Attr{"city"}}
	phi := fd.ToGED()
	if err := phi.Validate(); err != nil {
		t.Fatal(err)
	}
	if phi.Classify() != ged.ClassGFDx {
		t.Errorf("plain FD must encode as GFDx, got %v", phi.Classify())
	}
	bad := Encode(empDB(
		emp(graph.String("ann"), graph.String("cs"), graph.String("ny"), graph.Int(90)),
		emp(graph.String("bob"), graph.String("cs"), graph.String("la"), graph.Int(80)),
	))
	if reason.Satisfies(bad, ged.Set{phi}) {
		t.Error("FD violation must be caught")
	}
	good := Encode(empDB(
		emp(graph.String("ann"), graph.String("cs"), graph.String("ny"), graph.Int(90)),
		emp(graph.String("bob"), graph.String("cs"), graph.String("ny"), graph.Int(80)),
		emp(graph.String("cat"), graph.String("ee"), graph.String("la"), graph.Int(85)),
	))
	if !reason.Satisfies(good, ged.Set{phi}) {
		t.Error("satisfying instance flagged")
	}
}

func TestCFDRoundTrip(t *testing.T) {
	// (emp: dept → city, (cs ‖ ny)): cs employees must be in ny.
	ny := graph.String("ny")
	cs := graph.String("cs")
	cfd := CFD{
		Rel: "emp", LHS: []graph.Attr{"dept"}, RHS: []graph.Attr{"city"},
		Pattern: CFDPattern{"dept": &cs, "city": &ny},
	}
	geds := cfd.ToGEDs()
	if len(geds) != 1 {
		t.Fatal("single-tableau CFD must encode as one GED")
	}
	phi := geds[0]
	if phi.Classify() != ged.ClassGFD {
		t.Errorf("CFD must encode as GFD, got %v", phi.Classify())
	}
	bad := Encode(empDB(emp(graph.String("ann"), cs, graph.String("la"), graph.Int(90))))
	if reason.Satisfies(bad, ged.Set{phi}) {
		t.Error("CFD violation must be caught")
	}
	good := Encode(empDB(
		emp(graph.String("ann"), cs, ny, graph.Int(90)),
		emp(graph.String("bob"), graph.String("ee"), graph.String("la"), graph.Int(80)),
	))
	if !reason.Satisfies(good, ged.Set{phi}) {
		t.Error("satisfying instance flagged")
	}
	// The ee employee is outside the CFD's scope — that is the point of
	// conditional dependencies.
}

func TestCFDWithVariableRHS(t *testing.T) {
	// (emp: dept → city, (cs ‖ _)): cs employees must agree on city,
	// whatever it is.
	cs := graph.String("cs")
	cfd := CFD{
		Rel: "emp", LHS: []graph.Attr{"dept"}, RHS: []graph.Attr{"city"},
		Pattern: CFDPattern{"dept": &cs, "city": nil},
	}
	phi := cfd.ToGEDs()[0]
	bad := Encode(empDB(
		emp(graph.String("ann"), cs, graph.String("ny"), graph.Int(90)),
		emp(graph.String("bob"), cs, graph.String("la"), graph.Int(80)),
	))
	if reason.Satisfies(bad, ged.Set{phi}) {
		t.Error("variable-RHS CFD violation must be caught")
	}
}

func TestEGDEncoding(t *testing.T) {
	// R(a, b), R(a, c) → b = c (an FD written as an EGD with joins).
	schemas := map[string]Schema{
		"r": {Name: "r", Attrs: []graph.Attr{"a", "b"}},
	}
	egd := EGD{
		Body:    []Atom{{Rel: "r", Vars: []string{"x", "y"}}, {Rel: "r", Vars: []string{"x", "z"}}},
		Y1:      "y",
		Y2:      "z",
		Schemas: schemas,
	}
	geds, err := egd.ToGEDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(geds) != 2 {
		t.Fatalf("EGD must encode as the pair (φ_R, φ_E), got %d", len(geds))
	}
	db := Database{{
		Schema: schemas["r"],
		Tuples: []Tuple{
			{"a": graph.Int(1), "b": graph.Int(2)},
			{"a": graph.Int(1), "b": graph.Int(3)},
		},
	}}
	g := Encode(db)
	if reason.Satisfies(g, ged.Set(geds)) {
		t.Error("EGD violation must be caught")
	}
	ok := Database{{
		Schema: schemas["r"],
		Tuples: []Tuple{
			{"a": graph.Int(1), "b": graph.Int(2)},
			{"a": graph.Int(2), "b": graph.Int(3)},
		},
	}}
	if !reason.Satisfies(Encode(ok), ged.Set(geds)) {
		t.Error("satisfying instance flagged")
	}
}

func TestEGDErrors(t *testing.T) {
	egd := EGD{Body: []Atom{{Rel: "nope", Vars: []string{"x"}}}, Y1: "x", Y2: "x",
		Schemas: map[string]Schema{}}
	if _, err := egd.ToGEDs(); err == nil {
		t.Error("unknown relation accepted")
	}
	egd2 := EGD{
		Body:    []Atom{{Rel: "r", Vars: []string{"x"}}},
		Y1:      "x",
		Y2:      "w",
		Schemas: map[string]Schema{"r": {Name: "r", Attrs: []graph.Attr{"a"}}},
	}
	if _, err := egd2.ToGEDs(); err == nil {
		t.Error("free conclusion variable accepted")
	}
}

func TestDenialConstraintEncoding(t *testing.T) {
	// ¬∃ t1, t2: t1.salary > t2.salary ∧ t1.dept = t2.dept ∧ t1.rank < t2.rank
	// (no one in a department outranks a higher earner — classic DC shape).
	dc := DenialConstraint{
		Rels: []string{"emp", "emp"},
		Atoms: []DCAtom{
			{T1: 0, A1: "salary", Op: ged.OpGt, T2: 1, A2: "salary"},
			{T1: 0, A1: "dept", Op: ged.OpEq, T2: 1, A2: "dept"},
			{T1: 0, A1: "rank", Op: ged.OpLt, T2: 1, A2: "rank"},
		},
	}
	g := dc.ToGDC()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	db := graph.New()
	a := db.AddNodeAttrs("emp", map[graph.Attr]graph.Value{
		"salary": graph.Int(100), "dept": graph.String("cs"), "rank": graph.Int(1)})
	b := db.AddNodeAttrs("emp", map[graph.Attr]graph.Value{
		"salary": graph.Int(90), "dept": graph.String("cs"), "rank": graph.Int(2)})
	if gdc.Satisfies(db, gdc.Set{g}) {
		t.Error("denial constraint violation must be caught")
	}
	db.SetAttr(a, "rank", graph.Int(3))
	if !gdc.Satisfies(db, gdc.Set{g}) {
		t.Error("fixed instance flagged")
	}
	_ = b
}

func TestConstantDCAtom(t *testing.T) {
	dc := DenialConstraint{
		Rels:  []string{"emp"},
		Atoms: []DCAtom{{T1: 0, A1: "salary", Op: ged.OpLt, T2: -1, Const: graph.Int(0)}},
	}
	g := dc.ToGDC()
	db := graph.New()
	db.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(-5)})
	if gdc.Satisfies(db, gdc.Set{g}) {
		t.Error("negative salary must violate")
	}
}
