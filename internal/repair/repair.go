// Package repair implements chase-based data cleaning, the application
// the paper's introduction motivates: dependencies "have been widely
// used in practice to detect semantic inconsistencies and repair data."
//
// Repairing a graph G under a set Σ of GEDs is the chase of G by Σ read
// as an edit script: equating attributes fills in or corrects values,
// id literals merge duplicate entities, and attribute generation adds
// required fields. Theorem 1 makes the outcome canonical — the repair is
// the same whatever order the rules fire in. When the chase is invalid
// the data conflicts with Σ in a way no value- or merge-edit fixes
// (e.g. a forbidding constraint matched, or two sources insist on
// different constants); the conflict is reported for human resolution
// instead of silently choosing a side.
package repair

import (
	"context"
	"fmt"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// EditKind discriminates repair edits.
type EditKind uint8

const (
	// SetAttr records an attribute write (new or corrected value).
	SetAttr EditKind = iota
	// MergeNodes records an entity merge.
	MergeNodes
	// EquateAttrs records two attributes forced to one (unknown) value.
	EquateAttrs
)

// Edit is one entry of the repair script.
type Edit struct {
	Kind EditKind
	// Rule names the GED that forced the edit.
	Rule string
	// Node / Attr / Value describe a SetAttr.
	Node  graph.NodeID
	Attr  graph.Attr
	Value graph.Value
	// A, B are the merged nodes (MergeNodes) or the second attribute
	// site (EquateAttrs: A.Attr = B.Attr2).
	A, B   graph.NodeID
	Attr2  graph.Attr
	HadOld bool
	Old    graph.Value
}

// String renders the edit.
func (e Edit) String() string {
	switch e.Kind {
	case SetAttr:
		if e.HadOld {
			return fmt.Sprintf("[%s] set n%d.%s = %s (was %s)", e.Rule, e.Node, e.Attr, e.Value, e.Old)
		}
		return fmt.Sprintf("[%s] set n%d.%s = %s (new)", e.Rule, e.Node, e.Attr, e.Value)
	case MergeNodes:
		return fmt.Sprintf("[%s] merge n%d into n%d", e.Rule, e.B, e.A)
	default:
		return fmt.Sprintf("[%s] equate n%d.%s with n%d.%s", e.Rule, e.A, e.Attr, e.B, e.Attr2)
	}
}

// Result reports a repair.
type Result struct {
	// Repaired reports whether a canonical repair exists.
	Repaired bool
	// Graph is the repaired graph (the materialized chase quotient).
	Graph *graph.Graph
	// NodeOf maps original nodes into the repaired graph.
	NodeOf map[graph.NodeID]graph.NodeID
	// Edits is the canonical edit script derived from the chase trace.
	Edits []Edit
	// Conflict explains why no repair exists, when Repaired is false.
	Conflict *chase.Conflict
	// ConflictRule names the GED whose enforcement failed, if known.
	ConflictRule string
}

// Run repairs g under sigma. The input graph is not modified.
func Run(g *graph.Graph, sigma ged.Set) *Result {
	out, _ := RunCtx(context.Background(), g, sigma, 0)
	return out
}

// RunCtx is Run with cooperative cancellation and an optional chase
// round bound (see chase.RunCtx). On cancellation or an exceeded bound
// the error is non-nil and the result is not meaningful.
func RunCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, maxRounds int) (*Result, error) {
	work := g.Clone()
	res, err := chase.RunCtx(ctx, work, sigma, nil, maxRounds)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	if !res.Consistent() {
		out.Conflict = res.Eq.Conflict()
		if n := len(res.Steps); n > 0 {
			out.ConflictRule = sigma[res.Steps[n-1].GED].Name
		}
		return out, nil
	}
	out.Repaired = true
	out.Graph = res.Materialize()
	out.NodeOf = res.Coercion.NodeOf
	out.Edits = editScript(g, res, sigma)
	return out, nil
}

// editScript translates the chase trace into user-facing edits.
func editScript(orig *graph.Graph, res *chase.Result, sigma ged.Set) []Edit {
	var edits []Edit
	for _, s := range res.Steps {
		d := sigma[s.GED]
		l := d.Y[s.Literal]
		k, _ := l.Kind()
		switch k {
		case ged.ConstLiteral:
			n := s.Match[l.Left.Var]
			e := Edit{Kind: SetAttr, Rule: d.Name, Node: n, Attr: l.Left.Attr, Value: l.Right.Const}
			if v, ok := orig.Attr(n, l.Left.Attr); ok {
				e.HadOld, e.Old = true, v
			}
			edits = append(edits, e)
		case ged.VarLiteral:
			a := s.Match[l.Left.Var]
			b := s.Match[l.Right.Var]
			// If one side holds a concrete original value, report a copy;
			// otherwise an equate.
			if v, ok := orig.Attr(b, l.Right.Attr); ok {
				e := Edit{Kind: SetAttr, Rule: d.Name, Node: a, Attr: l.Left.Attr, Value: v}
				if old, had := orig.Attr(a, l.Left.Attr); had {
					e.HadOld, e.Old = true, old
				}
				edits = append(edits, e)
			} else if v, ok := orig.Attr(a, l.Left.Attr); ok {
				edits = append(edits, Edit{Kind: SetAttr, Rule: d.Name, Node: b, Attr: l.Right.Attr, Value: v})
			} else {
				edits = append(edits, Edit{Kind: EquateAttrs, Rule: d.Name,
					A: a, Attr: l.Left.Attr, B: b, Attr2: l.Right.Attr})
			}
		case ged.IDLiteral:
			edits = append(edits, Edit{Kind: MergeNodes, Rule: d.Name,
				A: s.Match[l.Left.Var], B: s.Match[l.Right.Var]})
		}
	}
	return edits
}

// Check reports the violations that a repair would address, without
// performing it: the matches of Σ's patterns whose antecedents hold but
// whose consequents fail on g.
func Check(g *graph.Graph, sigma ged.Set) []string {
	var out []string
	for _, d := range sigma {
		d := d
		pattern.ForEachMatch(d.Pattern, g, func(m pattern.Match) bool {
			for _, l := range d.X {
				if !holdsInGraph(g, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !holdsInGraph(g, l, m) {
					out = append(out, fmt.Sprintf("%s: %v fails %s", d.Name, m, l))
					return true
				}
			}
			return true
		})
	}
	return out
}

func holdsInGraph(g *graph.Graph, l ged.Literal, m pattern.Match) bool {
	k, _ := l.Kind()
	switch k {
	case ged.ConstLiteral:
		v, ok := g.Attr(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case ged.VarLiteral:
		v1, ok1 := g.Attr(m[l.Left.Var], l.Left.Attr)
		v2, ok2 := g.Attr(m[l.Right.Var], l.Right.Attr)
		return ok1 && ok2 && v1.Equal(v2)
	default:
		return m[l.Left.Var] == m[l.Right.Var]
	}
}
