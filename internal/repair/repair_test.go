package repair

import (
	"math/rand"
	"strings"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

func TestRepairFillsMissingName(t *testing.T) {
	// Two capitals of one country must share a name; the second one is
	// missing it, and the repair copies it over.
	g := graph.New()
	c := g.AddNode("country")
	y := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("Helsinki")})
	z := g.AddNode("city")
	g.AddEdge(c, "capital", y)
	g.AddEdge(c, "capital", z)
	sigma := ged.Set{gen.PaperPhi2()}

	r := Run(g, sigma)
	if !r.Repaired {
		t.Fatalf("repair failed: %v", r.Conflict)
	}
	if v, ok := r.Graph.Attr(r.NodeOf[z], "name"); !ok || !v.Equal(graph.String("Helsinki")) {
		t.Error("missing capital name must be filled in")
	}
	if !reason.Satisfies(r.Graph, sigma) {
		t.Error("repaired graph must satisfy Σ")
	}
	// The edit script names the rule and the copy.
	found := false
	for _, e := range r.Edits {
		if e.Kind == SetAttr && e.Value.Equal(graph.String("Helsinki")) && e.Rule == "phi2" {
			found = true
		}
	}
	if !found {
		t.Errorf("edit script missing the name copy: %v", r.Edits)
	}
	// The input graph is untouched.
	if _, ok := g.Attr(z, "name"); ok {
		t.Error("Run must not mutate its input")
	}
}

func TestRepairMergesDuplicates(t *testing.T) {
	g, stats := gen.MusicDB(3, 25, 0.4)
	if stats.DupPairs == 0 {
		t.Skip("no duplicates planted")
	}
	keys := gen.PaperKeys()
	r := Run(g, keys)
	if !r.Repaired {
		t.Fatalf("repair failed: %v", r.Conflict)
	}
	if r.Graph.NumNodes() >= g.NumNodes() {
		t.Error("duplicates must merge")
	}
	if !reason.Satisfies(r.Graph, keys) {
		t.Error("repaired catalog must satisfy the keys")
	}
	merges := 0
	for _, e := range r.Edits {
		if e.Kind == MergeNodes {
			merges++
		}
	}
	if merges == 0 {
		t.Error("edit script must record merges")
	}
}

func TestRepairDetectsUnrepairable(t *testing.T) {
	// A forbidding constraint matched: no value edit fixes it.
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	g.AddEdge(a, "child", b)
	g.AddEdge(a, "parent", b)
	sigma := ged.Set{gen.PaperPhi4()}
	r := Run(g, sigma)
	if r.Repaired {
		t.Fatal("child-parent cycle must be unrepairable")
	}
	if r.Conflict == nil || r.ConflictRule != "phi4" {
		t.Errorf("conflict attribution wrong: %v / %s", r.Conflict, r.ConflictRule)
	}
}

func TestRepairConflictingConstants(t *testing.T) {
	// The creator's stored type contradicts the rule's constant: the
	// chase refuses to overwrite silently.
	g := graph.New()
	dev := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{"type": graph.String("psychologist")})
	game := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String("video game")})
	g.AddEdge(dev, "create", game)
	r := Run(g, ged.Set{gen.PaperPhi1()})
	if r.Repaired {
		t.Fatal("contradicting constants must be reported, not overwritten")
	}
}

func TestRepairSetsConstant(t *testing.T) {
	// When the attribute is absent, the constant is written.
	g := graph.New()
	dev := g.AddNode("person")
	game := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String("video game")})
	g.AddEdge(dev, "create", game)
	r := Run(g, ged.Set{gen.PaperPhi1()})
	if !r.Repaired {
		t.Fatalf("repair failed: %v", r.Conflict)
	}
	if v, ok := r.Graph.Attr(r.NodeOf[dev], "type"); !ok || !v.Equal(graph.String("programmer")) {
		t.Error("missing type must be set to programmer")
	}
	if len(r.Edits) != 1 || r.Edits[0].Kind != SetAttr || r.Edits[0].HadOld {
		t.Errorf("edit script wrong: %v", r.Edits)
	}
	if !strings.Contains(r.Edits[0].String(), "(new)") {
		t.Errorf("edit rendering wrong: %s", r.Edits[0])
	}
}

func TestCheckListsViolations(t *testing.T) {
	g, stats := gen.KnowledgeBase(5, 20, 0.4)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	vs := Check(g, sigma)
	if len(vs) < stats.Total() {
		t.Errorf("Check found %d, planted %d", len(vs), stats.Total())
	}
}

// TestRepairedAlwaysSatisfies: property test — whenever the repair
// succeeds, the result satisfies Σ; whenever it fails, the original
// graph indeed violates Σ.
func TestRepairedAlwaysSatisfies(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	repaired, conflicted := 0, 0
	for trial := 0; trial < 80; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		r := Run(g, sigma)
		if r.Repaired {
			repaired++
			if !reason.Satisfies(r.Graph, sigma) {
				t.Fatalf("trial %d: repaired graph violates Σ", trial)
			}
		} else {
			conflicted++
			if reason.Satisfies(g, sigma) {
				t.Fatalf("trial %d: unrepairable but graph satisfies Σ", trial)
			}
		}
	}
	t.Logf("repaired=%d conflicted=%d", repaired, conflicted)
}

func randomSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		if rng.Intn(2) == 0 {
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		}
		switch rng.Intn(3) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		default:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		}
		sigma = append(sigma, ged.New("r", q, xs, ys))
	}
	return sigma
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	g := graph.New()
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		id := g.AddNode(labels[rng.Intn(len(labels))])
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				g.SetAttr(id, a, graph.Int(rng.Intn(2)))
			}
		}
	}
	for i := 0; i < 2*n; i++ {
		if rng.Intn(2) == 0 {
			g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
		}
	}
	return g
}
