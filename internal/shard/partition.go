// Package shard partitions a graph into P shard snapshots and runs GED
// validation shard-local in parallel — the partitioned-parallel
// evaluation the source paper frames as the natural deployment of its
// parallel + incremental validation story.
//
// A Partitioner assigns every node an owning shard. Each shard keeps a
// full node table (ids and labels aligned with the global graph) but
// only the edges incident to a node it owns and only the attributes of
// nodes it owns or borders (its frontier): an owned node's adjacency is
// locally complete, so a match extension anchored on an owned binding
// never misses a candidate. Cut edges are stored at both endpoint
// owners and counted in the boundary index; the foreign endpoint of a
// cut edge becomes a frontier node whose attributes are replicated to
// the neighboring shard.
//
// Validation runs as a frame protocol over per-shard work queues: a
// frame is a resumable partial binding of one rule's extension order.
// Each extension step executes at the shard owning the binding of its
// anchor variable (the first already-bound pattern neighbor), where the
// candidate adjacency is complete; when the next step's anchor lands in
// a foreign shard the frame is shipped to that shard's queue and
// resumed there. Checks that need state a shard does not hold — an edge
// between two foreign nodes, an attribute of a non-frontier node — are
// deferred, and every completed binding is finally verified against the
// shared global snapshot, so the result is exactly the monolithic
// violation set, merged back into the same canonical order.
package shard

import "gedlib/internal/graph"

// Partitioner assigns graph nodes to shards. Implementations must be
// deterministic: the same graph and shard count always produce the same
// assignment, so differential runs and replicas agree on ownership.
type Partitioner interface {
	// Name labels the strategy in stats and benchmark artifacts.
	Name() string
	// Partition assigns every node of g to one of p shards, returning
	// owner[node] for the graph's dense node ids.
	Partition(g *graph.Graph, p int) []int32
	// Place assigns a node that appears after partitioning (a delta
	// add, seen only with its label) without access to the graph; it
	// must be O(1) and deterministic.
	Place(n graph.NodeID, l graph.Label, p int) int32
}

// Hash is the baseline partitioner: owner = mix(id) mod p. It ignores
// topology — expect a cut fraction near (p-1)/p — but places any node
// in O(1) and balances shard sizes tightly.
type Hash struct{}

// NewHash returns the hash partitioner.
func NewHash() *Hash { return &Hash{} }

// Name implements Partitioner.
func (*Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (h *Hash) Partition(g *graph.Graph, p int) []int32 {
	owner := make([]int32, g.NumNodes())
	for i := range owner {
		owner[i] = h.Place(graph.NodeID(i), "", p)
	}
	return owner
}

// Place implements Partitioner.
func (*Hash) Place(n graph.NodeID, _ graph.Label, p int) int32 {
	return int32(mix64(uint64(n)) % uint64(p))
}

// mix64 is the splitmix64 finalizer: a cheap invertible scramble so
// consecutive ids (communities are usually contiguous id ranges) spread
// across shards instead of striping.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Greedy is the linear deterministic greedy (LDG) edge-cut partitioner:
// nodes stream in id order and each joins the shard holding most of its
// already-placed neighbors, damped by a capacity penalty that keeps
// shards balanced. On community-structured graphs it cuts a small
// fraction of the edges where hash cuts (p-1)/p of them.
type Greedy struct {
	// Slack is the capacity slack factor (shard capacity = n/p ·
	// Slack); values ≤ 1 select the default 1.1.
	Slack float64
}

// NewGreedy returns the greedy edge-cut partitioner with default slack.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Partitioner.
func (*Greedy) Name() string { return "greedy" }

// Partition implements Partitioner.
func (gr *Greedy) Partition(g *graph.Graph, p int) []int32 {
	slack := gr.Slack
	if slack <= 1 {
		slack = 1.1
	}
	n := g.NumNodes()
	capacity := float64(n)/float64(p)*slack + 1
	owner := make([]int32, n)
	size := make([]int, p)
	counts := make([]int, p)
	for id := 0; id < n; id++ {
		// Count already-placed neighbors per shard (both directions —
		// the cut does not care about edge orientation).
		for i := range counts {
			counts[i] = 0
		}
		for _, e := range g.Out(graph.NodeID(id)) {
			if int(e.Dst) < id {
				counts[owner[e.Dst]]++
			}
		}
		for _, e := range g.In(graph.NodeID(id)) {
			if int(e.Src) < id {
				counts[owner[e.Src]]++
			}
		}
		best, bestScore := 0, -1.0
		for s := 0; s < p; s++ {
			score := float64(counts[s]) * (1 - float64(size[s])/capacity)
			if score > bestScore || (score == bestScore && size[s] < size[best]) {
				best, bestScore = s, score
			}
		}
		if bestScore <= 0 {
			// No placed neighbors (or all attractive shards full):
			// balance instead.
			for s := 1; s < p; s++ {
				if size[s] < size[best] {
					best = s
				}
			}
		}
		owner[id] = int32(best)
		size[best]++
	}
	return owner
}

// Place implements Partitioner: nodes added after partitioning fall
// back to hash placement — the streaming heuristic needs the adjacency
// that a delta-added node does not have yet.
func (*Greedy) Place(n graph.NodeID, _ graph.Label, p int) int32 {
	return int32(mix64(uint64(n)) % uint64(p))
}
