package shard

import (
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

// compiledRule is one GED prepared for frame-based evaluation: the
// pattern's variables with their labels and pushed-down constant
// filters, plus one extension order per entry point — orders[0] is the
// cost-aware order of the monolithic compiled plan (full enumeration);
// orders[1+k] starts at pattern variable k (the pivoted orders the
// incremental touched-node search seeds from, one per variable, exactly
// the pivots the monolithic ValidateTouching tries).
type compiledRule struct {
	idx    int
	d      *ged.GED
	vars   []pattern.Var
	labels []graph.Label
	// filters[v] are the antecedent constant literals on variable v; a
	// shard checks them only when it knows the candidate's attributes
	// (the global finalization re-checks everything regardless).
	filters [][]cfilter
	orders  [][]int
	steps   [][]step
	// pedges are the pattern's edges over variable indices — the
	// deferred tri-state edge checks finalization re-verifies globally.
	pedges []pedge
	// ante and cons are X and Y compiled to binding-vector indices, so
	// finalization evaluates them without building a match map.
	ante, cons []clit
}

// pedge is one pattern edge over variable indices.
type pedge struct {
	src, dst int
	label    graph.Label
}

// clit is one literal of X or Y compiled to variable indices; attribute
// names stay symbolic here and resolve to dense snapshot ids per runner
// (a delta can introduce an attribute after rule compilation).
type clit struct {
	kind   ged.LiteralKind
	li, ri int
	la, ra graph.Attr
	c      graph.Value
	orig   ged.Literal
}

// compileLits lowers literals onto variable indices.
func compileLits(ls []ged.Literal, varIdx map[pattern.Var]int) []clit {
	out := make([]clit, len(ls))
	for i, l := range ls {
		k, ok := l.Kind()
		if !ok {
			panic("shard: non-GED literal in validation")
		}
		cl := clit{kind: k, orig: l, li: varIdx[l.Left.Var]}
		switch k {
		case ged.ConstLiteral:
			cl.la = l.Left.Attr
			cl.c = l.Right.Const
		case ged.VarLiteral:
			cl.la = l.Left.Attr
			cl.ri = varIdx[l.Right.Var]
			cl.ra = l.Right.Attr
		default: // IDLiteral
			cl.ri = varIdx[l.Right.Var]
		}
		out[i] = cl
	}
	return out
}

// cfilter is a pushed-down constant literal v.Attr = Value.
type cfilter struct {
	attr  graph.Attr
	value graph.Value
}

// step is one extension step of one order: bind variable v, generating
// candidates from the first anchor (an already-bound pattern neighbor)
// and checking the rest.
type step struct {
	v int
	// anchors are the pattern edges from v to already-bound variables.
	// anchors[0] generates candidates — and routes the frame: the step
	// executes at the shard owning its binding, where the adjacency is
	// complete. The rest are checked tri-state (prune only on locally
	// definitive absence). Empty anchors mean v is disconnected from
	// the bound prefix: the frame broadcasts and every shard extends
	// over the label candidates it owns.
	anchors []anchor
	// selfLoops are v→v pattern edges, checked tri-state per candidate.
	selfLoops []graph.Label
}

// anchor is a pattern edge between the step's variable and the bound
// variable other. out reports the direction other→v (candidates come
// from other's out-neighbors); otherwise v→other (in-neighbors).
type anchor struct {
	other int
	label graph.Label
	out   bool
}

// compileRules prepares sigma against the global snapshot. The base
// extension order comes from the monolithic matcher's own compiled plan
// so the sharded search visits variables in the same statistics-driven
// order; pivoted orders are derived from it by a connected-first
// rotation around each pivot.
func compileRules(sigma ged.Set, global *graph.Snapshot) []*compiledRule {
	out := make([]*compiledRule, len(sigma))
	for gi, d := range sigma {
		vars := d.Pattern.Vars()
		varIdx := make(map[pattern.Var]int, len(vars))
		for i, x := range vars {
			varIdx[x] = i
		}
		cr := &compiledRule{
			idx:     gi,
			d:       d,
			vars:    vars,
			labels:  make([]graph.Label, len(vars)),
			filters: make([][]cfilter, len(vars)),
		}
		for i, x := range vars {
			cr.labels[i] = d.Pattern.Label(x)
		}
		for _, f := range reason.PushdownFilters(d) {
			if vi, ok := varIdx[f.Var]; ok {
				cr.filters[vi] = append(cr.filters[vi], cfilter{attr: f.Attr, value: f.Value})
			}
		}
		var edges []pattern.Edge
		adj := make([][]int, len(vars)) // var -> pattern neighbors (both directions)
		for _, e := range d.Pattern.Edges() {
			edges = append(edges, e)
			si, di := varIdx[e.Src], varIdx[e.Dst]
			cr.pedges = append(cr.pedges, pedge{src: si, dst: di, label: e.Label})
			if si != di {
				adj[si] = append(adj[si], di)
				adj[di] = append(adj[di], si)
			}
		}
		cr.ante = compileLits(d.X, varIdx)
		cr.cons = compileLits(d.Y, varIdx)
		base := make([]int, 0, len(vars))
		pl := pattern.CompileFiltered(d.Pattern, global, reason.PushdownFilters(d))
		for _, x := range pl.OrderedVars() {
			base = append(base, varIdx[x])
		}
		cr.orders = append(cr.orders, base)
		for k := range vars {
			cr.orders = append(cr.orders, pivotOrder(base, k, adj))
		}
		cr.steps = make([][]step, len(cr.orders))
		for oi, order := range cr.orders {
			cr.steps[oi] = buildSteps(order, varIdx, edges)
		}
		out[gi] = cr
	}
	return out
}

// pivotOrder rotates base around pivot k: k first, then repeatedly the
// earliest base-order variable adjacent to the bound prefix (falling
// back to the earliest remaining one when the pattern disconnects), so
// every step after the pivot stays anchored whenever the pattern
// allows.
func pivotOrder(base []int, k int, adj [][]int) []int {
	order := make([]int, 0, len(base))
	order = append(order, k)
	bound := make([]bool, len(adj))
	bound[k] = true
	remaining := len(base) - 1
	for remaining > 0 {
		pick := -1
		for _, v := range base {
			if bound[v] {
				continue
			}
			for _, w := range adj[v] {
				if bound[w] {
					pick = v
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for _, v := range base {
				if !bound[v] {
					pick = v
					break
				}
			}
		}
		order = append(order, pick)
		bound[pick] = true
		remaining--
	}
	return order
}

// buildSteps derives the per-step anchors and self-loops of one order.
func buildSteps(order []int, varIdx map[pattern.Var]int, edges []pattern.Edge) []step {
	bound := make([]bool, len(order))
	steps := make([]step, 0, len(order))
	for _, v := range order {
		st := step{v: v}
		for _, e := range edges {
			si, di := varIdx[e.Src], varIdx[e.Dst]
			switch {
			case si == v && di == v:
				st.selfLoops = append(st.selfLoops, e.Label)
			case di == v && bound[si]:
				st.anchors = append(st.anchors, anchor{other: si, label: e.Label, out: true})
			case si == v && bound[di]:
				st.anchors = append(st.anchors, anchor{other: di, label: e.Label, out: false})
			}
		}
		bound[v] = true
		steps = append(steps, st)
	}
	return steps
}
