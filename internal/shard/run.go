package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/obs"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

// unbound marks an unbound slot of a frame's binding vector.
const unbound graph.NodeID = -1

// frame is one resumable partial binding: rule cr's extension order oi,
// about to execute step si, with bind holding the bound variables (by
// variable index, unbound slots -1). Frames live in per-shard queues;
// the queue a frame sits in decides which shard snapshot extends it.
type frame struct {
	rule int32
	oi   int32
	si   int32
	bind []graph.NodeID
}

// runner executes one frame-protocol search: P shard queues under one
// lock, P workers with work stealing (any worker may pick up any
// shard's frames — shard snapshots are immutable and shared in-process,
// so stealing only moves CPU time, never state), and per-destination
// violation buckets keyed by the owner of the match's first-variable
// binding.
type runner struct {
	sh     *sharding
	global *graph.Snapshot
	rules  []*compiledRule
	// ante and cons mirror each rule's compiled literals with attribute
	// names resolved to this global snapshot's dense symbols, so
	// finalization runs map-free (resolved per runner, not per rule:
	// deltas can introduce attributes after rule compilation).
	ante, cons [][]rlit

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]frame
	pending int
	// failed, once set, drains the search: next() stops handing out
	// frames and run() returns the error. It contains worker panics — a
	// poisoned rule must fail one validation, not kill the process or
	// strand the other workers in cond.Wait (their frames would never
	// retire, so pending could not reach zero).
	failed error

	outMu   sync.Mutex
	buckets [][]reason.Violation

	// reg, when non-nil, receives the search's frame-traffic matrix and
	// finalization-reject count; workers tally locally and merge once.
	reg *obs.Registry
}

// rlit is a clit with its attribute symbols resolved against one global
// snapshot; -1 means no node of the snapshot carries the attribute (the
// literal cannot hold under existence semantics).
type rlit struct {
	kind   ged.LiteralKind
	li, ri int
	la, ra int32
	c      graph.Value
	orig   ged.Literal
}

func resolveLits(ls []clit, global *graph.Snapshot) []rlit {
	out := make([]rlit, len(ls))
	for i, l := range ls {
		rl := rlit{kind: l.kind, li: l.li, ri: l.ri, la: -1, ra: -1, c: l.c, orig: l.orig}
		if l.kind != ged.IDLiteral {
			if id, ok := global.AttrID(l.la); ok {
				rl.la = id
			}
		}
		if l.kind == ged.VarLiteral {
			if id, ok := global.AttrID(l.ra); ok {
				rl.ra = id
			}
		}
		out[i] = rl
	}
	return out
}

// holds evaluates one resolved literal on a complete binding, with the
// paper's existence semantics (missing attribute → false) — the same
// answers as reason.HoldsInGraph, without the match map.
func holds(g *graph.Snapshot, l rlit, bind []graph.NodeID) bool {
	switch l.kind {
	case ged.ConstLiteral:
		if l.la < 0 {
			return false
		}
		v, ok := g.AttrValueID(bind[l.li], l.la)
		return ok && v.Equal(l.c)
	case ged.VarLiteral:
		if l.la < 0 || l.ra < 0 {
			return false
		}
		v1, ok1 := g.AttrValueID(bind[l.li], l.la)
		v2, ok2 := g.AttrValueID(bind[l.ri], l.ra)
		return ok1 && ok2 && v1.Equal(v2)
	default: // IDLiteral
		return bind[l.li] == bind[l.ri]
	}
}

func newRunner(sh *sharding, global *graph.Snapshot, rules []*compiledRule) *runner {
	r := &runner{
		sh:      sh,
		global:  global,
		rules:   rules,
		ante:    make([][]rlit, len(rules)),
		cons:    make([][]rlit, len(rules)),
		queues:  make([][]frame, sh.p),
		buckets: make([][]reason.Violation, sh.p),
	}
	for i, cr := range rules {
		r.ante[i] = resolveLits(cr.ante, global)
		r.cons[i] = resolveLits(cr.cons, global)
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// seed enqueues a frame before the workers start (no locking needed).
// A frame whose next step has an anchor goes to the anchor binding's
// owner; one with no anchor (or no step left) broadcasts so every shard
// covers the candidates it owns — dst < 0 requests the broadcast.
func (r *runner) seed(dst int, f frame) {
	if dst >= 0 {
		r.queues[dst] = append(r.queues[dst], f)
		r.pending++
		return
	}
	for q := 0; q < r.sh.p; q++ {
		g := f
		g.bind = append([]graph.NodeID(nil), f.bind...)
		r.queues[q] = append(r.queues[q], g)
		r.pending++
	}
}

// seedFull enqueues the full-enumeration entry frames: order 0, step 0
// of every rule, broadcast (step 0 has no bound anchor; each shard
// enumerates its owned label candidates, so the seed space partitions
// exactly). A zero-variable pattern would finalize identically on every
// shard, so it seeds one queue only.
func (r *runner) seedFull() {
	for ri, cr := range r.rules {
		f := frame{rule: int32(ri), bind: newBind(len(cr.vars))}
		if len(cr.vars) == 0 {
			r.seed(0, f)
			continue
		}
		r.seed(-1, f)
	}
}

// seedTouched enqueues the incremental entry frames: for every rule and
// every pattern variable k, the pivoted order 1+k with k pre-bound to
// each touched node that passes the variable's label and (definitive,
// global-snapshot) constant-filter checks — the same pivot set the
// monolithic touched-search tries, with each pivot frame landing on the
// touched node's owner. Duplicate finds across pivots collapse later:
// all copies of a match route to the same destination store.
func (r *runner) seedTouched(touched []graph.NodeID) {
	for ri, cr := range r.rules {
		for k := range cr.vars {
			oi := int32(1 + k)
		next:
			for _, t := range touched {
				if !graph.LabelMatches(cr.labels[k], r.global.Label(t)) {
					continue
				}
				for _, fl := range cr.filters[k] {
					v, ok := r.global.Attr(t, fl.attr)
					if !ok || !v.Equal(fl.value) {
						continue next
					}
				}
				bind := newBind(len(cr.vars))
				bind[k] = t
				f := frame{rule: int32(ri), oi: oi, si: 1, bind: bind}
				r.seed(r.frameDst(f), f)
			}
		}
	}
}

// frameDst resolves a frame's destination queue: the owner of its next
// step's anchor binding, or broadcast (-1) when the next variable has
// no bound pattern neighbor. A finished frame (si past the order) goes
// to the first binding's owner arbitrarily — finalization only needs
// the global snapshot.
func (r *runner) frameDst(f frame) int {
	cr := r.rules[f.rule]
	order := cr.orders[f.oi]
	if int(f.si) >= len(order) {
		for _, n := range f.bind {
			if n != unbound {
				return int(r.sh.owner[n])
			}
		}
		return 0
	}
	st := &cr.steps[f.oi][f.si]
	if len(st.anchors) == 0 {
		return -1
	}
	return int(r.sh.owner[f.bind[st.anchors[0].other]])
}

// run starts P workers and blocks until the frame space drains (or ctx
// cancels or a worker fails, in which case remaining frames are
// discarded). Per-worker buckets merge into r.buckets.
func (r *runner) run(ctx context.Context) error {
	var wg sync.WaitGroup
	for w := 0; w < r.sh.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					r.fail(fmt.Errorf("shard: validation worker panic: %v", p))
				}
			}()
			ws := &wstate{
				r:       r,
				ctx:     ctx,
				home:    w,
				out:     make([][]frame, r.sh.p),
				buckets: make([][]reason.Violation, r.sh.p),
			}
			if r.reg != nil {
				ws.nFrames = make([]uint64, r.sh.p*r.sh.p)
			}
			ws.loop()
			r.outMu.Lock()
			for q, b := range ws.buckets {
				r.buckets[q] = append(r.buckets[q], b...)
			}
			r.outMu.Unlock()
			ws.flushMetrics()
		}(w)
	}
	wg.Wait()
	r.mu.Lock()
	err := r.failed
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// fail aborts the search with err (the first one wins) and wakes every
// worker blocked for work so they observe it and exit.
func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.failed == nil {
		r.failed = err
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// wstate is one worker's scratch: outgoing frame buffers (flushed in
// batches to keep queue-lock traffic low) and per-destination
// violation buckets.
type wstate struct {
	r       *runner
	ctx     context.Context
	home    int
	out     [][]frame
	outN    int
	buckets [][]reason.Violation
	ticks   int
	// metric tallies, merged once per worker (nFrames nil when the
	// runner is unobserved): frames shipped indexed src*p+dst, and
	// complete bindings rejected at finalization.
	nFrames  []uint64
	nRejects uint64
}

// flushMetrics merges this worker's tallies into the runner's registry;
// one get-or-create per touched series per worker per search.
func (ws *wstate) flushMetrics() {
	reg := ws.r.reg
	if reg == nil {
		return
	}
	p := ws.r.sh.p
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			if n := ws.nFrames[src*p+dst]; n > 0 {
				reg.Counter("ged_shard_frames_total", "partial-binding frames shipped between shards",
					"src", strconv.Itoa(src), "dst", strconv.Itoa(dst)).Add(n)
			}
		}
	}
	if ws.nRejects > 0 {
		reg.Counter("ged_shard_finalize_rejects_total",
			"complete bindings rejected at global finalization").Add(ws.nRejects)
	}
}

func (ws *wstate) loop() {
	r := ws.r
	for {
		sh, f, ok := r.next(ws.home)
		if !ok {
			return
		}
		if ws.ctx.Err() == nil {
			cr := r.rules[f.rule]
			ws.extend(sh, cr, int(f.oi), int(f.si), f.bind)
		}
		// Deliver buffered frames before retiring this one, so the
		// pending count can never hit zero with work still buffered.
		ws.flush()
		r.retire()
	}
}

// next pops a frame: the worker's home queue first, then steals. Blocks
// until work arrives or the search drains.
func (r *runner) next(home int) (int, frame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.pending == 0 || r.failed != nil {
			r.cond.Broadcast()
			return 0, frame{}, false
		}
		for i := 0; i < r.sh.p; i++ {
			q := (home + i) % r.sh.p
			if n := len(r.queues[q]); n > 0 {
				f := r.queues[q][n-1]
				r.queues[q][n-1] = frame{}
				r.queues[q] = r.queues[q][:n-1]
				return q, f, true
			}
		}
		r.cond.Wait()
	}
}

// retire marks one popped frame fully processed.
func (r *runner) retire() {
	r.mu.Lock()
	r.pending--
	done := r.pending == 0
	r.mu.Unlock()
	if done {
		r.cond.Broadcast()
	}
}

func (ws *wstate) flush() {
	if ws.outN == 0 {
		return
	}
	r := ws.r
	r.mu.Lock()
	for q := range ws.out {
		if len(ws.out[q]) > 0 {
			r.queues[q] = append(r.queues[q], ws.out[q]...)
			r.pending += len(ws.out[q])
			ws.out[q] = ws.out[q][:0]
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	ws.outN = 0
}

// emit buffers a frame for dst (or broadcast when dst < 0), copying the
// binding vector — the caller keeps mutating its own. src is the shard
// whose snapshot produced the frame, for the traffic matrix.
func (ws *wstate) emit(src, dst int, ri, oi, si int, bind []graph.NodeID) {
	f := frame{rule: int32(ri), oi: int32(oi), si: int32(si),
		bind: append([]graph.NodeID(nil), bind...)}
	if dst >= 0 {
		ws.out[dst] = append(ws.out[dst], f)
		ws.outN++
		if ws.nFrames != nil {
			ws.nFrames[src*ws.r.sh.p+dst]++
		}
	} else {
		for q := 0; q < ws.r.sh.p; q++ {
			g := f
			if q > 0 {
				g.bind = append([]graph.NodeID(nil), f.bind...)
			}
			ws.out[q] = append(ws.out[q], g)
			ws.outN++
			if ws.nFrames != nil {
				ws.nFrames[src*ws.r.sh.p+q]++
			}
		}
	}
	if ws.outN >= 128 {
		ws.flush()
	}
}

// extend runs step si of order oi at shard sh, recursing locally while
// the next step's anchor stays on this shard and shipping the partial
// binding otherwise — the WCO matcher's extension loop, with shard
// queues between steps.
func (ws *wstate) extend(sh int, cr *compiledRule, oi, si int, bind []graph.NodeID) {
	order := cr.orders[oi]
	if si >= len(order) {
		ws.finalize(cr, bind)
		return
	}
	st := &cr.steps[oi][si]
	snap := ws.r.sh.snaps[sh]
	if len(st.anchors) == 0 {
		// No bound neighbor: this shard extends over the label
		// candidates it owns (ownership partitions the candidate space
		// across the broadcast, so nothing is found twice).
		for _, c := range snap.CandidateNodes(cr.labels[st.v]) {
			if int(ws.r.sh.owner[c]) != sh {
				continue
			}
			ws.tryCandidate(sh, cr, oi, si, st, bind, c)
		}
		return
	}
	a := st.anchors[0]
	an := bind[a.other]
	var cands []graph.NodeID
	if a.out {
		cands = snap.OutNeighbors(an, a.label)
	} else {
		cands = snap.InNeighbors(an, a.label)
	}
	for _, c := range cands {
		if !graph.LabelMatches(cr.labels[st.v], snap.Label(c)) {
			continue
		}
		ws.tryCandidate(sh, cr, oi, si, st, bind, c)
	}
}

// tryCandidate checks candidate c against the step's remaining
// constraints tri-state — prune only on locally definitive failure,
// defer the rest to global finalization — then binds it and descends.
func (ws *wstate) tryCandidate(sh int, cr *compiledRule, oi, si int, st *step, bind []graph.NodeID, c graph.NodeID) {
	ws.ticks++
	if ws.ticks&1023 == 0 && ws.ctx.Err() != nil {
		return
	}
	snap := ws.r.sh.snaps[sh]
	owner := ws.r.sh.owner
	// anchors[0] (when present) generated the candidates; the rest are
	// constraint checks.
	rest := st.anchors
	if len(rest) > 0 {
		rest = rest[1:]
	}
	for _, a := range rest {
		var has bool
		if a.out {
			has = edgeHas(snap, bind[a.other], a.label, c)
		} else {
			has = edgeHas(snap, c, a.label, bind[a.other])
		}
		if !has && (int(owner[c]) == sh || int(owner[bind[a.other]]) == sh) {
			return // an owned endpoint makes the absence definitive
		}
	}
	for _, l := range st.selfLoops {
		if !edgeHas(snap, c, l, c) && int(owner[c]) == sh {
			return
		}
	}
	if len(cr.filters[st.v]) > 0 && ws.r.sh.known[sh][c] {
		for _, fl := range cr.filters[st.v] {
			v, ok := snap.Attr(c, fl.attr)
			if !ok || !v.Equal(fl.value) {
				return // attribute state is locally complete: definitive
			}
		}
	}
	bind[st.v] = c
	order := cr.orders[oi]
	if si+1 >= len(order) {
		ws.finalize(cr, bind)
	} else {
		nst := &cr.steps[oi][si+1]
		if len(nst.anchors) == 0 {
			ws.emit(sh, -1, cr.idx, oi, si+1, bind)
		} else if dst := int(owner[bind[nst.anchors[0].other]]); dst == sh {
			ws.extend(sh, cr, oi, si+1, bind)
		} else {
			ws.emit(sh, dst, cr.idx, oi, si+1, bind)
		}
	}
	bind[st.v] = unbound
}

// finalize verifies a complete binding against the shared global
// snapshot: every pattern edge (resolving the deferred tri-state
// checks; labels were definitive during enumeration), the antecedent,
// and the first failing consequent literal — the same answers
// reason.FailingLiteral gives, evaluated on the binding vector so no
// match map is built for the non-violating majority. Confirmed
// violations bucket by the first variable binding's owner: every
// duplicate find of a match (the pivoted orders can reach one match
// from several pivots) lands in the same destination store, whose key
// set collapses them.
func (ws *wstate) finalize(cr *compiledRule, bind []graph.NodeID) {
	g := ws.r.global
	for _, e := range cr.pedges {
		if !edgeHas(g, bind[e.src], e.label, bind[e.dst]) {
			ws.nRejects++
			return
		}
	}
	for _, l := range ws.r.ante[cr.idx] {
		if !holds(g, l, bind) {
			ws.nRejects++
			return
		}
	}
	var fail ged.Literal
	found := false
	for _, l := range ws.r.cons[cr.idx] {
		if !holds(g, l, bind) {
			fail, found = l.orig, true
			break
		}
	}
	if !found {
		ws.nRejects++
		return
	}
	m := make(pattern.Match, len(cr.vars))
	for i, x := range cr.vars {
		m[x] = bind[i]
	}
	dst := 0
	if len(bind) > 0 {
		dst = int(ws.r.sh.owner[bind[0]])
	}
	ws.buckets[dst] = append(ws.buckets[dst],
		reason.Violation{GED: cr.d, Match: m, Literal: fail})
}

func edgeHas(snap *graph.Snapshot, src graph.NodeID, l graph.Label, dst graph.NodeID) bool {
	if l == graph.Wildcard {
		return snap.HasAnyEdge(src, dst)
	}
	return snap.HasEdge(src, l, dst)
}

func newBind(n int) []graph.NodeID {
	b := make([]graph.NodeID, n)
	for i := range b {
		b[i] = unbound
	}
	return b
}
