package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

var testLabels = []graph.Label{"person", "product", "org"}
var testAttrs = []graph.Attr{"a", "b", "c"}

// renderViolations turns a canonical violation list into one comparable
// string: rule index, bindings in variable order, and the recorded
// failing literal.
func renderViolations(vs []reason.Violation, sigma ged.Set) string {
	idx := make(map[*ged.GED]int, len(sigma))
	for i, d := range sigma {
		idx[d] = i
	}
	out := ""
	for _, v := range vs {
		out += fmt.Sprintf("g%d[", idx[v.GED])
		for _, x := range v.GED.Pattern.Vars() {
			out += fmt.Sprintf("%s=%d;", x, v.Match[x])
		}
		out += fmt.Sprintf("]%v\n", v.Literal)
	}
	return out
}

func oracle(t *testing.T, snap *graph.Snapshot, sigma ged.Set) string {
	t.Helper()
	vs, err := reason.ValidateOnCtx(context.Background(), snap, sigma, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	reason.SortViolations(vs, sigma)
	return renderViolations(vs, sigma)
}

func partitioners() []Partitioner {
	return []Partitioner{NewHash(), NewGreedy()}
}

// mutate applies a few random add-only ops to g and returns when done.
func mutate(rng *rand.Rand, g *graph.Graph) {
	ops := 1 + rng.Intn(8)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			g.AddNode(testLabels[rng.Intn(len(testLabels))])
		case 1:
			n := g.NumNodes()
			g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
		case 2:
			n := g.NumNodes()
			g.AddEdge(graph.NodeID(rng.Intn(n)), "likes", graph.NodeID(rng.Intn(n)))
		default:
			n := g.NumNodes()
			g.SetAttr(graph.NodeID(rng.Intn(n)),
				testAttrs[rng.Intn(len(testAttrs))], graph.Int(rng.Intn(3)))
		}
	}
}

// TestShardDifferentialValidate: one-shot sharded validation must equal
// the monolithic validator byte for byte, across random graphs, rule
// sets, shard counts and partitioners.
func TestShardDifferentialValidate(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 12; trial++ {
		seed := int64(1000 + trial)
		g := gen.RandomPropertyGraph(seed, 40+trial*17, 2.5, testLabels, testAttrs, 3)
		sigma := gen.RandomGEDSet(seed+1, 4, 3, testLabels, testAttrs, 3)
		snap := g.Freeze()
		want := oracle(t, snap, sigma)
		for _, p := range []int{1, 2, 3, 4} {
			for _, part := range partitioners() {
				st := New(g, snap, p, part)
				vs, err := st.Validate(ctx, sigma)
				if err != nil {
					t.Fatalf("trial %d p=%d %s: %v", trial, p, part.Name(), err)
				}
				if got := renderViolations(vs, sigma); got != want {
					t.Fatalf("trial %d p=%d %s: sharded validate diverged\n got:\n%s\nwant:\n%s",
						trial, p, part.Name(), got, want)
				}
			}
		}
	}
}

// TestShardDifferentialApply: the maintained per-shard stores must
// track random delta sequences and stay byte-identical to a full
// monolithic re-validation after every delta.
func TestShardDifferentialApply(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 8; trial++ {
		seed := int64(2000 + trial)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomPropertyGraph(seed, 40+trial*13, 2.0, testLabels, testAttrs, 3)
		sigma := gen.RandomGEDSet(seed+1, 3, 3, testLabels, testAttrs, 3)
		for _, part := range partitioners() {
			gw := g.Clone()
			st := New(gw, gw.Freeze(), 1+trial%4, part)
			if err := st.SeedStores(ctx, sigma); err != nil {
				t.Fatalf("seed: %v", err)
			}
			for step := 0; step < 6; step++ {
				mutate(rng, gw)
				d := gw.DeltaSince(st.Version())
				if d == nil {
					t.Fatalf("journal trimmed unexpectedly")
				}
				if err := st.ApplyDelta(ctx, d); err != nil {
					t.Fatalf("apply: %v", err)
				}
				want := oracle(t, st.Global(), sigma)
				got := renderViolations(st.Violations(), sigma)
				if got != want {
					t.Fatalf("trial %d %s step %d: maintained set diverged\n got:\n%s\nwant:\n%s",
						trial, part.Name(), step, got, want)
				}
			}
		}
	}
}

// TestShardConcurrentStates: independent sharded states on independent
// graphs must apply deltas concurrently race-clean (the engine runs one
// state per graph under its per-graph lock; cross-graph concurrency is
// the supported parallelism).
func TestShardConcurrentStates(t *testing.T) {
	ctx := context.Background()
	sigma := gen.RandomGEDSet(7, 3, 3, testLabels, testAttrs, 3)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + i)))
			g := gen.RandomPropertyGraph(int64(i), 60, 2.0, testLabels, testAttrs, 3)
			st := New(g, g.Freeze(), 4, NewGreedy())
			if err := st.SeedStores(ctx, sigma); err != nil {
				t.Errorf("seed: %v", err)
				return
			}
			for step := 0; step < 5; step++ {
				mutate(rng, g)
				d := g.DeltaSince(st.Version())
				if err := st.ApplyDelta(ctx, d); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				st.Violations()
			}
		}(i)
	}
	wg.Wait()
}

// TestPartitioners: both strategies must produce a valid, deterministic
// assignment, and greedy must beat hash on a community-structured
// graph's cut.
func TestPartitioners(t *testing.T) {
	g := graph.New()
	const communities, size = 4, 30
	for c := 0; c < communities; c++ {
		for i := 0; i < size; i++ {
			g.AddNode("person")
		}
	}
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < communities; c++ {
		base := graph.NodeID(c * size)
		for i := 0; i < size*4; i++ {
			g.AddEdge(base+graph.NodeID(rng.Intn(size)), "knows", base+graph.NodeID(rng.Intn(size)))
		}
	}
	for i := 0; i < 10; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(size)), "follows",
			graph.NodeID(size+rng.Intn(size)))
	}
	cut := func(part Partitioner, p int) int {
		owner := part.Partition(g, p)
		if len(owner) != g.NumNodes() {
			t.Fatalf("%s: owner table covers %d of %d nodes", part.Name(), len(owner), g.NumNodes())
		}
		again := part.Partition(g, p)
		edges := 0
		for i := range owner {
			if owner[i] < 0 || int(owner[i]) >= p {
				t.Fatalf("%s: node %d assigned to shard %d of %d", part.Name(), i, owner[i], p)
			}
			if owner[i] != again[i] {
				t.Fatalf("%s: nondeterministic assignment of node %d", part.Name(), i)
			}
		}
		for _, e := range g.Edges() {
			if owner[e.Src] != owner[e.Dst] {
				edges++
			}
		}
		return edges
	}
	hashCut := cut(NewHash(), communities)
	greedyCut := cut(NewGreedy(), communities)
	if greedyCut >= hashCut {
		t.Fatalf("greedy cut %d not below hash cut %d on community graph", greedyCut, hashCut)
	}
}

// BenchmarkShardValidate measures the steady-state sharded full
// validation on the power-law social workload (the gedbench shard
// experiment's host graph), for overhead comparison against
// BenchmarkMonoValidate.
func BenchmarkShardValidate(b *testing.B) {
	ctx := context.Background()
	g, _ := gen.PowerLawSocial(17, 8, 250, 6, 0.2)
	sigma := gen.PartitionFriendlyRules()
	st := New(g, g.Freeze(), 2, NewGreedy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Validate(ctx, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonoValidate is the monolithic baseline on the same
// workload.
func BenchmarkMonoValidate(b *testing.B) {
	ctx := context.Background()
	g, _ := gen.PowerLawSocial(17, 8, 250, 6, 0.2)
	sigma := gen.PartitionFriendlyRules()
	snap := g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reason.ValidateOnCtx(ctx, snap, sigma, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestShardBoundaryIndex pins the boundary-index bookkeeping: cut
// edges counted once (idempotent duplicates ignored) and frontier
// attribute state adopted so later writes keep replicating.
func TestShardBoundaryIndex(t *testing.T) {
	ctx := context.Background()
	g := graph.New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	g.SetAttr(b, "a", graph.Int(1))
	snap := g.Freeze()
	// Hash owners for ids 0 and 1 under p=2 may or may not collide;
	// force a known split with a partitioner stub via Greedy on a
	// disconnected pair — instead, just use hash and read ownership.
	st := New(g, snap, 2, NewHash())
	so, do := st.sh.owner[a], st.sh.owner[b]
	g.AddEdge(a, "e", b)
	g.AddEdge(a, "e", b) // duplicate: must not double-count
	if err := st.ApplyDelta(ctx, g.DeltaSince(st.Version())); err != nil {
		t.Fatal(err)
	}
	wantCut := 0
	if so != do {
		wantCut = 1
	}
	if st.CutEdges() != wantCut {
		t.Fatalf("cut edges = %d, want %d (owners %d,%d)", st.CutEdges(), wantCut, so, do)
	}
	if so != do {
		// b is now frontier of a's shard: its attrs must be visible
		// there and follow later writes.
		if !st.sh.known[so][b] {
			t.Fatalf("frontier node not adopted")
		}
		if v, ok := st.sh.graphs[so].Attr(b, "a"); !ok || !v.Equal(graph.Int(1)) {
			t.Fatalf("adopted frontier attrs missing: %v %v", v, ok)
		}
		g.SetAttr(b, "a", graph.Int(2))
		if err := st.ApplyDelta(ctx, g.DeltaSince(st.Version())); err != nil {
			t.Fatal(err)
		}
		if v, ok := st.sh.graphs[so].Attr(b, "a"); !ok || !v.Equal(graph.Int(2)) {
			t.Fatalf("frontier attr write not routed: %v %v", v, ok)
		}
	}
}

// TestWorkerPanicContained: a panic inside a validation worker must
// surface as an error from run — not kill the process, and not strand
// the other workers in cond.Wait with undrained frames.
func TestWorkerPanicContained(t *testing.T) {
	g := gen.RandomPropertyGraph(42, 200, 2.5, testLabels, testAttrs, 3)
	sigma := gen.RandomGEDSet(43, 4, 3, testLabels, testAttrs, 3)
	st := New(g, g.Freeze(), 4, NewHash())
	r := newRunner(st.sh, st.global, st.compiled(sigma))
	r.seedFull()
	// A frame with an out-of-range rule index panics the worker that
	// pops it, mid-search, while the other workers still hold work.
	r.seed(0, frame{rule: 9999})
	done := make(chan error, 1)
	go func() { done <- r.run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run returned nil after a worker panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run deadlocked after a worker panic")
	}
}
