package shard

import (
	"fmt"

	"gedlib/internal/graph"
)

// sharding is the partitioned form of one graph: P shard graphs, each a
// real *graph.Graph with its own mutation journal and snapshot lineage,
// plus the ownership table and the boundary index.
//
// Every shard graph holds the full node table (dense ids and true
// labels aligned with the global graph, so shard-local NodeIDs are
// global NodeIDs), the edges with at least one owned endpoint (cut
// edges are stored at both owners), and the attributes of the nodes it
// owns or borders. known[i][n] records that shard i holds n's full
// attribute state — n is owned by i or a frontier node of i — which is
// what makes shard-local constant-filter checks definitive.
type sharding struct {
	p      int
	part   Partitioner
	owner  []int32
	graphs []*graph.Graph
	snaps  []*graph.Snapshot
	known  [][]bool
	ownedN []int
	// cutEdges counts distinct edges whose endpoints have different
	// owners — the boundary index's headline number.
	cutEdges int
	// version is the global graph version the shards reflect.
	version uint64
}

// newSharding partitions g. The caller must not mutate g concurrently
// (the Engine's entry lock provides this).
func newSharding(g *graph.Graph, p int, part Partitioner) *sharding {
	s := &sharding{
		p:      p,
		part:   part,
		owner:  part.Partition(g, p),
		graphs: make([]*graph.Graph, p),
		snaps:  make([]*graph.Snapshot, p),
		known:  make([][]bool, p),
		ownedN: make([]int, p),
	}
	n := g.NumNodes()
	for i := 0; i < p; i++ {
		s.graphs[i] = graph.New()
		s.known[i] = make([]bool, n)
	}
	for id := 0; id < n; id++ {
		l := g.Label(graph.NodeID(id))
		for i := 0; i < p; i++ {
			s.graphs[i].AddNode(l)
		}
		oi := s.owner[id]
		s.known[oi][id] = true
		s.ownedN[oi]++
		for a, v := range g.Attrs(graph.NodeID(id)) {
			s.graphs[oi].SetAttr(graph.NodeID(id), a, v)
		}
	}
	for _, e := range g.Edges() {
		so, do := s.owner[e.Src], s.owner[e.Dst]
		s.graphs[so].AddEdge(e.Src, e.Label, e.Dst)
		if do != so {
			s.graphs[do].AddEdge(e.Src, e.Label, e.Dst)
			s.cutEdges++
			s.adopt(int(do), e.Src)
			s.adopt(int(so), e.Dst)
		}
	}
	for i := 0; i < p; i++ {
		s.snaps[i] = s.graphs[i].Freeze()
	}
	s.version = g.Version()
	return s
}

// adopt marks n as a frontier node of shard i: its attributes become —
// and, through the known-gated routing of later attribute writes, stay
// — locally complete. The copy source is the owner's shard graph, which
// holds n's full attribute state by invariant.
func (s *sharding) adopt(i int, n graph.NodeID) {
	if s.known[i][n] {
		return
	}
	s.known[i][n] = true
	for a, v := range s.graphs[s.owner[n]].Attrs(n) {
		s.graphs[i].SetAttr(n, a, v)
	}
}

// applyDelta routes d — the global journal slice from s.version — into
// the shard graphs and advances each shard snapshot along its own
// journal lineage. Work is proportional to the delta per shard it
// touches: a shard owning none of the delta's nodes sees only the
// (shared, O(|Δ.Nodes|)) node-table appends.
func (s *sharding) applyDelta(d *graph.Delta) {
	if d.FromVersion != s.version {
		panic(fmt.Sprintf("shard: delta from version %d applied to sharding at %d", d.FromVersion, s.version))
	}
	// Nodes join every shard graph so shard-local ids stay aligned with
	// global ids; ownership comes from the partitioner's streaming
	// placement (the structure-aware pass already ran).
	for _, na := range d.Nodes {
		for i := range s.graphs {
			s.graphs[i].AddNode(na.Label)
			s.known[i] = append(s.known[i], false)
		}
		oi := s.part.Place(na.ID, na.Label, s.p)
		s.owner = append(s.owner, oi)
		s.known[oi][na.ID] = true
		s.ownedN[oi]++
	}
	for _, e := range d.Edges {
		so, do := s.owner[e.Src], s.owner[e.Dst]
		if s.graphs[so].HasEdge(e.Src, e.Label, e.Dst) {
			// AddEdge is idempotent; skipping keeps cutEdges exact
			// under duplicate inserts.
			continue
		}
		s.graphs[so].AddEdge(e.Src, e.Label, e.Dst)
		if do != so {
			s.graphs[do].AddEdge(e.Src, e.Label, e.Dst)
			s.cutEdges++
			s.adopt(int(do), e.Src)
			s.adopt(int(so), e.Dst)
		}
	}
	// Attribute writes land on every shard that tracks the node's
	// attributes; adoption above ran first, so a node that just became
	// frontier receives this delta's writes too.
	for _, aw := range d.Attrs {
		for i := range s.graphs {
			if s.known[i][aw.Node] {
				s.graphs[i].SetAttr(aw.Node, aw.Attr, aw.Value)
			}
		}
	}
	for i := range s.graphs {
		sd := s.graphs[i].DeltaSince(s.snaps[i].SourceVersion())
		switch {
		case sd == nil:
			// The shard journal no longer reaches back; refreeze.
			s.snaps[i] = s.graphs[i].Freeze()
		case !sd.Empty():
			s.snaps[i] = s.snaps[i].Apply(sd)
		}
	}
	s.version = d.ToVersion
}
