package shard

import (
	"context"
	"sync"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/obs"
	"gedlib/internal/reason"
)

// State is one graph's sharded validation state: the partition topology
// (shard graphs, snapshots, boundary index), the global snapshot the
// shards reflect, compiled rule orders, and — once an Apply seeds them
// — the per-shard maintained violation stores.
//
// State is single-writer: ApplyDelta, Validate and SeedStores must not
// run concurrently with each other or with the read accessors. The
// Engine serializes them under its per-graph apply lock.
type State struct {
	sh     *sharding
	global *graph.Snapshot

	// Compiled rule cache, keyed by rule-set identity.
	ruleSigma ged.Set
	rules     []*compiledRule

	// Per-shard maintained stores (nil until SeedStores); stores[i]
	// owns the violations whose first-variable binding shard i owns.
	storeSigma ged.Set
	stores     []*reason.ViolationStore
	merged     []reason.Violation

	// reg, when set via Observe, receives frame-traffic and
	// finalization-reject counters from every search this state runs,
	// and store-maintenance counters from its seeded stores.
	reg *obs.Registry
}

// New partitions g into p shards with part and freezes the per-shard
// snapshots. global must be g's snapshot at its current version (the
// Engine's cached one); g must be quiescent for the duration.
func New(g *graph.Graph, global *graph.Snapshot, p int, part Partitioner) *State {
	return &State{sh: newSharding(g, p, part), global: global}
}

// Observe routes the state's shard-protocol metrics — partial-binding
// frames shipped per (src, dst) shard pair, bindings rejected at global
// finalization, store maintenance — into reg. A nil registry leaves the
// state unobserved.
func (st *State) Observe(reg *obs.Registry) { st.reg = reg }

// Version is the global graph version the sharding reflects.
func (st *State) Version() uint64 { return st.sh.version }

// Global is the global snapshot the sharding reflects.
func (st *State) Global() *graph.Snapshot { return st.global }

// P is the shard count.
func (st *State) P() int { return st.sh.p }

// PartitionerName labels the partitioning strategy.
func (st *State) PartitionerName() string { return st.sh.part.Name() }

// CutEdges is the boundary index's cut-edge count: distinct edges whose
// endpoints live on different shards.
func (st *State) CutEdges() int { return st.sh.cutEdges }

// OwnedNodes returns the per-shard owned-node counts.
func (st *State) OwnedNodes() []int {
	out := make([]int, st.sh.p)
	copy(out, st.sh.ownedN)
	return out
}

// StoreCounts returns the per-shard maintained violation counts, or nil
// when no stores are seeded.
func (st *State) StoreCounts() []int {
	if st.stores == nil {
		return nil
	}
	out := make([]int, len(st.stores))
	for i, s := range st.stores {
		out[i] = s.Len()
	}
	return out
}

// Seeded reports whether maintained stores exist for exactly sigma.
func (st *State) Seeded(sigma ged.Set) bool {
	return st.stores != nil && sameSet(st.storeSigma, sigma)
}

// ApplyDelta advances everything the state maintains — shard graphs and
// snapshots, the boundary index, the global snapshot, and the seeded
// stores — by d, the global journal slice from Version(). Cost is
// O(|Δ| per touched shard) plus the incremental search around the
// touched nodes. On error the state is inconsistent and must be
// discarded (the Engine rebuilds it on the next call).
func (st *State) ApplyDelta(ctx context.Context, d *graph.Delta) error {
	if d.Empty() {
		return ctx.Err()
	}
	post := st.global.Apply(d)
	st.sh.applyDelta(d)
	st.global = post
	if st.stores == nil {
		return ctx.Err()
	}
	touched := d.TouchedNodes()
	if len(touched) == 0 {
		return ctx.Err()
	}
	// Fresh search: pivoted frame enumeration over the updated shard
	// snapshots, finalized against the new global snapshot.
	r := newRunner(st.sh, post, st.compiled(st.storeSigma))
	r.reg = st.reg
	r.seedTouched(touched)
	if err := r.run(ctx); err != nil {
		st.stores = nil
		return err
	}
	// Store maintenance: each shard's store re-checks its touched
	// entries and merges its fresh bucket. Stores are disjoint and
	// snapshots immutable, so the per-shard passes run in parallel.
	errs := make([]error, len(st.stores))
	var wg sync.WaitGroup
	for i := range st.stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := st.stores[i].Recheck(ctx, post, touched); err != nil {
				errs[i] = err
				return
			}
			reason.SortViolations(r.buckets[i], st.storeSigma)
			st.stores[i].AdmitFresh(r.buckets[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			st.stores = nil
			return err
		}
	}
	st.merged = nil
	return nil
}

// Validate runs one full sharded validation of sigma — every rule's
// base extension order, seeded across all shards — and returns the
// violations in canonical order. It does not touch the stores.
func (st *State) Validate(ctx context.Context, sigma ged.Set) ([]reason.Violation, error) {
	r := newRunner(st.sh, st.global, st.compiled(sigma))
	r.reg = st.reg
	r.seedFull()
	if err := r.run(ctx); err != nil {
		return nil, err
	}
	out := mergeBuckets(r.buckets)
	reason.SortViolations(out, sigma)
	return out, nil
}

// SeedStores (re)builds the per-shard maintained stores for sigma from
// one full sharded validation.
func (st *State) SeedStores(ctx context.Context, sigma ged.Set) error {
	st.stores, st.merged = nil, nil
	r := newRunner(st.sh, st.global, st.compiled(sigma))
	r.reg = st.reg
	r.seedFull()
	if err := r.run(ctx); err != nil {
		return err
	}
	val := reason.NewValidatorOn(st.global, sigma)
	val.Observe(st.reg)
	stores := make([]*reason.ViolationStore, st.sh.p)
	for i := range stores {
		stores[i] = reason.NewViolationStoreSeeded(val, r.buckets[i])
		stores[i].Observe(
			st.reg.Counter("ged_engine_store_rechecks_total", "maintained violations re-checked after a delta"),
			st.reg.Counter("ged_engine_store_drops_total", "maintained violations dropped as repaired"),
			st.reg.Counter("ged_engine_store_fresh_total", "fresh violations admitted into maintained stores"))
	}
	st.storeSigma, st.stores = sigma, stores
	return nil
}

// Violations returns the maintained violation set merged across shards
// in canonical order. The merge is cached until the next ApplyDelta.
func (st *State) Violations() []reason.Violation {
	if st.stores == nil {
		return nil
	}
	if st.merged == nil {
		var out []reason.Violation
		for _, s := range st.stores {
			out = append(out, s.Violations()...)
		}
		reason.SortViolations(out, st.storeSigma)
		st.merged = out
	}
	return st.merged
}

func (st *State) compiled(sigma ged.Set) []*compiledRule {
	if st.rules == nil || !sameSet(st.ruleSigma, sigma) {
		st.ruleSigma, st.rules = sigma, compileRules(sigma, st.global)
	}
	return st.rules
}

func mergeBuckets(buckets [][]reason.Violation) []reason.Violation {
	var out []reason.Violation
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// sameSet reports rule-set identity: same rules, same order (the
// facade's SameRules, restated here for the internal layer).
func sameSet(a, b ged.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
