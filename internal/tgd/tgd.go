// Package tgd implements graph tuple-generating dependencies, the
// "other practical forms of graph dependencies, e.g., TGDs" the paper
// names as future work (Section 9). GEDs already cover the
// attribute-generating fragment (Section 3: Q[x](∅ → x.A = x.A)); the
// TGDs here generate *topology* — nodes and edges:
//
//	σ: Left[x̄]  →  ∃ ȳ  Right[x̄, ȳ]
//
// Every match of the body pattern Left must extend to a match of the
// head pattern Right; head variables not in the body are existential.
// Examples: "every album was recorded by some artist", "every employee
// reports to some employee".
//
// Validation is exact. The chase adds fresh existential nodes and the
// head's edges for every unsatisfied body match (the standard oblivious
// chase); since TGD chases can diverge, Chase refuses sets that are not
// weakly acyclic unless the caller supplies an explicit round budget —
// mirroring the classical treatment the paper cites ([33, 34]).
package tgd

import (
	"fmt"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// TGD is a topology-generating dependency Left → ∃ȳ Right.
type TGD struct {
	// Name is an optional identifier.
	Name string
	// Left is the body pattern (universally quantified).
	Left *pattern.Pattern
	// Right is the head pattern; it must contain every body variable
	// (with a ⪯-compatible label) and may add existential variables.
	Right *pattern.Pattern
}

// New returns the TGD Left → ∃ Right.
func New(name string, left, right *pattern.Pattern) *TGD {
	return &TGD{Name: name, Left: left, Right: right}
}

// Validate checks well-formedness: body variables must appear in the
// head with compatible labels, and the head must add something (an
// existential variable or an extra edge).
func (t *TGD) Validate() error {
	if t.Left == nil || t.Right == nil {
		return fmt.Errorf("tgd %s: nil pattern", t.Name)
	}
	for _, v := range t.Left.Vars() {
		if !t.Right.HasVar(v) {
			return fmt.Errorf("tgd %s: body variable %s missing from the head", t.Name, v)
		}
		if !graph.LabelMatches(t.Right.Label(v), t.Left.Label(v)) &&
			!graph.LabelMatches(t.Left.Label(v), t.Right.Label(v)) {
			return fmt.Errorf("tgd %s: variable %s has incompatible labels", t.Name, v)
		}
	}
	if len(t.Existentials()) == 0 && len(t.Right.Edges()) <= len(t.Left.Edges()) {
		return fmt.Errorf("tgd %s: head adds nothing", t.Name)
	}
	return nil
}

// Existentials returns the head-only variables.
func (t *TGD) Existentials() []pattern.Var {
	var out []pattern.Var
	for _, v := range t.Right.Vars() {
		if !t.Left.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

// String renders the TGD.
func (t *TGD) String() string {
	return fmt.Sprintf("%s: %s => exists %s", t.Name, t.Left, t.Right)
}

// Set is a finite set of TGDs.
type Set []*TGD

// Validate checks every member.
func (s Set) Validate() error {
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Violation is a body match with no head extension.
type Violation struct {
	TGD   *TGD
	Match pattern.Match
}

// Validate finds the body matches of Σ in G that do not extend to the
// head, up to limit (≤ 0 means all).
func Validate(g *graph.Graph, sigma Set, limit int) []Violation {
	var out []Violation
	for _, t := range sigma {
		t := t
		head := pattern.Compile(t.Right, g)
		pattern.ForEachMatch(t.Left, g, func(m pattern.Match) bool {
			if !extends(head, m) {
				out = append(out, Violation{TGD: t, Match: m.Clone()})
			}
			return limit <= 0 || len(out) < limit
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Satisfies reports G ⊨ Σ.
func Satisfies(g *graph.Graph, sigma Set) bool {
	return len(Validate(g, sigma, 1)) == 0
}

// extends reports whether the body match m extends to the head plan.
func extends(head *pattern.Plan, m pattern.Match) bool {
	found := false
	head.ForEachBound(m, func(pattern.Match) bool {
		found = true
		return false
	})
	return found
}

// WeaklyAcyclic reports whether the set admits a terminating oblivious
// chase by the classical position-graph test, adapted to labels: there
// is a node per concrete head/body label; for each TGD, every body label
// gets a regular edge to every universal head label and a *special* edge
// to every existential head label. A cycle through a special edge means
// a TGD can keep feeding fresh nodes into (transitively) its own body.
// Wildcard-labeled existentials are conservatively cyclic (they can feed
// any body).
func WeaklyAcyclic(sigma Set) bool {
	type edge struct {
		from, to graph.Label
		special  bool
	}
	var edges []edge
	labels := map[graph.Label]bool{}
	for _, t := range sigma {
		var bodyLabels []graph.Label
		for _, v := range t.Left.Vars() {
			l := t.Left.Label(v)
			bodyLabels = append(bodyLabels, l)
			labels[l] = true
		}
		ex := map[pattern.Var]bool{}
		for _, v := range t.Existentials() {
			ex[v] = true
		}
		for _, v := range t.Right.Vars() {
			l := t.Right.Label(v)
			labels[l] = true
			for _, b := range bodyLabels {
				edges = append(edges, edge{from: b, to: l, special: ex[v]})
			}
		}
	}
	// Wildcards poison the test: a wildcard body matches anything, and a
	// wildcard existential can feed anything. Treat wildcard as adjacent
	// to every label.
	if labels[graph.Wildcard] {
		for l := range labels {
			edges = append(edges, edge{from: graph.Wildcard, to: l, special: false})
			edges = append(edges, edge{from: l, to: graph.Wildcard, special: false})
		}
	}
	// A special edge inside a strongly connected component = cyclic.
	// Small label sets: check reachability pairwise.
	reach := func(from, to graph.Label) bool {
		seen := map[graph.Label]bool{from: true}
		queue := []graph.Label{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur == to {
				return true
			}
			for _, e := range edges {
				if e.from == cur && !seen[e.to] {
					seen[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
		return false
	}
	for _, e := range edges {
		if e.special && reach(e.to, e.from) {
			return false
		}
	}
	return true
}

// Result reports a TGD chase.
type Result struct {
	// Graph is the chased graph (the input, mutated).
	Graph *graph.Graph
	// Created counts the fresh existential nodes added.
	Created int
	// Rounds is the number of fixpoint rounds applied.
	Rounds int
	// Complete is false when the round budget ran out before the
	// fixpoint (only possible with an explicit budget).
	Complete bool
}

// Chase runs the oblivious TGD chase on g (mutating it): every body
// match lacking a head extension gets fresh existential nodes and the
// head's edges. maxRounds ≤ 0 requires Σ to be weakly acyclic (an error
// is returned otherwise) and runs to the fixpoint; a positive maxRounds
// bounds the rounds explicitly for sets the test cannot certify.
func Chase(g *graph.Graph, sigma Set, maxRounds int) (*Result, error) {
	if err := sigma.Validate(); err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		if !WeaklyAcyclic(sigma) {
			return nil, fmt.Errorf("tgd: set is not weakly acyclic; pass an explicit round budget")
		}
		maxRounds = 1 << 20 // effectively unbounded; acyclicity terminates it
	}
	res := &Result{Graph: g, Complete: true}
	for round := 0; round < maxRounds; round++ {
		type firing struct {
			t *TGD
			m pattern.Match
		}
		var pending []firing
		for _, t := range sigma {
			t := t
			head := pattern.Compile(t.Right, g)
			pattern.ForEachMatch(t.Left, g, func(m pattern.Match) bool {
				if !extends(head, m) {
					pending = append(pending, firing{t: t, m: m.Clone()})
				}
				return true
			})
		}
		if len(pending) == 0 {
			res.Rounds = round
			return res, nil
		}
		for _, f := range pending {
			// Re-check: an earlier firing this round may have satisfied it.
			if extends(pattern.Compile(f.t.Right, g), f.m) {
				continue
			}
			assign := f.m.Clone()
			for _, v := range f.t.Existentials() {
				l := f.t.Right.Label(v)
				if l == graph.Wildcard {
					l = graph.Label(fmt.Sprintf("_ex%d", res.Created))
				}
				assign[v] = g.AddNode(l)
				res.Created++
			}
			for _, e := range f.t.Right.Edges() {
				g.AddEdge(assign[e.Src], e.Label, assign[e.Dst])
			}
		}
	}
	res.Rounds = maxRounds
	res.Complete = false
	return res, nil
}
