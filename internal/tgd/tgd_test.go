package tgd

import (
	"strings"
	"testing"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// albumArtist returns σ: every album was recorded by some artist.
func albumArtist() *TGD {
	left := pattern.New()
	left.AddVar("x", "album")
	right := pattern.New()
	right.AddVar("x", "album").AddVar("z", "artist")
	right.AddEdge("x", "by", "z")
	return New("album-by", left, right)
}

func TestValidateTGD(t *testing.T) {
	sigma := Set{albumArtist()}
	if err := sigma.Validate(); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	orphan := g.AddNode("album")
	covered := g.AddNode("album")
	artist := g.AddNode("artist")
	g.AddEdge(covered, "by", artist)

	vs := Validate(g, sigma, 0)
	if len(vs) != 1 || vs[0].Match["x"] != orphan {
		t.Fatalf("expected exactly the orphan album, got %v", vs)
	}
	if Satisfies(g, sigma) {
		t.Error("orphan album must violate")
	}
	g.AddEdge(orphan, "by", artist)
	if !Satisfies(g, sigma) {
		t.Error("covered albums must satisfy")
	}
}

func TestTGDValidateShape(t *testing.T) {
	// Body variable missing from the head.
	left := pattern.New()
	left.AddVar("x", "a").AddVar("y", "b")
	right := pattern.New()
	right.AddVar("x", "a")
	if New("bad", left, right).Validate() == nil {
		t.Error("missing body variable accepted")
	}
	// Head adds nothing.
	same := pattern.New()
	same.AddVar("x", "a")
	if New("noop", same, same.Clone()).Validate() == nil {
		t.Error("no-op head accepted")
	}
	// Edge-only head (no existentials) is fine: x knows y → y knows x.
	l2 := pattern.New()
	l2.AddVar("x", "p").AddVar("y", "p")
	l2.AddEdge("x", "knows", "y")
	r2 := pattern.New()
	r2.AddVar("x", "p").AddVar("y", "p")
	r2.AddEdge("x", "knows", "y")
	r2.AddEdge("y", "knows", "x")
	if err := New("sym", l2, r2).Validate(); err != nil {
		t.Errorf("edge-generating TGD rejected: %v", err)
	}
}

func TestChaseAddsExistentials(t *testing.T) {
	sigma := Set{albumArtist()}
	g := graph.New()
	g.AddNode("album")
	g.AddNode("album")
	res, err := Chase(g, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Created != 2 {
		t.Errorf("created %d artists, want 2", res.Created)
	}
	if !Satisfies(g, sigma) {
		t.Error("chased graph must satisfy Σ")
	}
	if !res.Complete {
		t.Error("weakly acyclic chase must complete")
	}
	// Idempotent: a second chase adds nothing.
	res2, err := Chase(g, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Created != 0 {
		t.Errorf("second chase created %d nodes", res2.Created)
	}
}

func TestChaseEdgeGenerating(t *testing.T) {
	// Symmetrize a knows-relation.
	l := pattern.New()
	l.AddVar("x", "p").AddVar("y", "p")
	l.AddEdge("x", "knows", "y")
	r := pattern.New()
	r.AddVar("x", "p").AddVar("y", "p")
	r.AddEdge("x", "knows", "y")
	r.AddEdge("y", "knows", "x")
	sigma := Set{New("sym", l, r)}

	g := graph.New()
	a := g.AddNode("p")
	b := g.AddNode("p")
	g.AddEdge(a, "knows", b)
	res, err := Chase(g, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(b, "knows", a) {
		t.Error("symmetric edge not added")
	}
	if res.Created != 0 {
		t.Error("no nodes should be created")
	}
	if !Satisfies(g, sigma) {
		t.Error("chased graph must satisfy Σ")
	}
}

func TestWeakAcyclicityDetection(t *testing.T) {
	// "Every person has a parent (a person)": the classic diverging TGD.
	l := pattern.New()
	l.AddVar("x", "person")
	r := pattern.New()
	r.AddVar("x", "person").AddVar("y", "person")
	r.AddEdge("x", "parent", "y")
	parent := New("parent", l, r)
	if WeaklyAcyclic(Set{parent}) {
		t.Fatal("self-feeding TGD must not be weakly acyclic")
	}
	g := graph.New()
	g.AddNode("person")
	if _, err := Chase(g, Set{parent}, 0); err == nil {
		t.Fatal("unbounded chase of a cyclic set must be refused")
	} else if !strings.Contains(err.Error(), "weakly acyclic") {
		t.Fatalf("unexpected error: %v", err)
	}
	// With an explicit budget it runs and reports incompleteness.
	res, err := Chase(g, Set{parent}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("bounded cyclic chase cannot complete")
	}
	if res.Created != 3 {
		t.Errorf("3 rounds must create 3 ancestors, got %d", res.Created)
	}
	// The album→artist set IS weakly acyclic.
	if !WeaklyAcyclic(Set{albumArtist()}) {
		t.Error("album-by must be weakly acyclic")
	}
}

func TestWeakAcyclicityTwoStepCycle(t *testing.T) {
	// a needs a b; every b needs an a: cyclic through two TGDs.
	la := pattern.New()
	la.AddVar("x", "a")
	ra := pattern.New()
	ra.AddVar("x", "a").AddVar("y", "b")
	ra.AddEdge("x", "e", "y")
	lb := pattern.New()
	lb.AddVar("x", "b")
	rb := pattern.New()
	rb.AddVar("x", "b").AddVar("y", "a")
	rb.AddEdge("x", "e", "y")
	sigma := Set{New("ab", la, ra), New("ba", lb, rb)}
	if WeaklyAcyclic(sigma) {
		t.Error("mutual feeding must be detected")
	}
}

func TestWeakAcyclicityWildcardConservative(t *testing.T) {
	// A wildcard existential can feed any body: conservatively cyclic
	// when any body exists to feed.
	l := pattern.New()
	l.AddVar("x", "a")
	r := pattern.New()
	r.AddVar("x", "a").AddVar("y", graph.Wildcard)
	r.AddEdge("x", "e", "y")
	if WeaklyAcyclic(Set{New("wild", l, r)}) {
		t.Error("wildcard existential must be conservatively rejected")
	}
}

func TestChaseCascade(t *testing.T) {
	// Weakly acyclic two-level cascade: albums need artists, artists
	// need managers. One chase reaches the fixpoint.
	sigma := Set{albumArtist()}
	l := pattern.New()
	l.AddVar("z", "artist")
	r := pattern.New()
	r.AddVar("z", "artist").AddVar("m", "manager")
	r.AddEdge("z", "managed_by", "m")
	sigma = append(sigma, New("managed", l, r))
	if !WeaklyAcyclic(sigma) {
		t.Fatal("cascade must be weakly acyclic")
	}
	g := graph.New()
	g.AddNode("album")
	res, err := Chase(g, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Created != 2 {
		t.Errorf("created %d, want artist + manager", res.Created)
	}
	if !Satisfies(g, sigma) {
		t.Error("cascade fixpoint must satisfy Σ")
	}
	if res.Rounds < 2 {
		t.Errorf("cascade needs two rounds, got %d", res.Rounds)
	}
}

func TestTGDString(t *testing.T) {
	s := albumArtist().String()
	if !strings.Contains(s, "=> exists") {
		t.Errorf("rendering wrong: %s", s)
	}
}
