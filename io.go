package gedlib

import (
	"gedlib/internal/gedio"
)

// ParseRules parses dependencies from the text DSL, one rule per `ged`
// block:
//
//	# a video game can only be created by programmers
//	ged phi1 on (x:person)-[create]->(y:product) {
//	  when y.type = "video game"
//	  then x.type = "programmer"
//	}
//
// Patterns are comma-separated edge chains of (var:label) nodes with `_`
// as the wildcard label; `when` (optional) introduces the antecedent and
// `then` the consequent; literals are `x.attr = value`, `x.attr =
// y.attr` or `x.id = y.id`, and `false` forbids the antecedent. Rules
// using ordered comparisons (GDC) or `or` (GED∨) are rejected here —
// parse those with the gdc and gedor subpackages.
func ParseRules(src string) (RuleSet, error) {
	rules, err := gedio.Parse(src)
	if err != nil {
		return nil, err
	}
	return gedio.GEDs(rules)
}

// FormatRules renders Σ in the DSL accepted by ParseRules. Rule names
// are sanitized to DSL identifiers (mined rules carry punctuation), so
// the output always re-parses.
func FormatRules(sigma RuleSet) string {
	rules := make([]*gedio.Rule, 0, len(sigma))
	for _, d := range sigma {
		rules = append(rules, &gedio.Rule{
			Name:    sanitizeRuleName(d.Name),
			Pattern: d.Pattern,
			X:       d.X,
			Y:       d.Y,
		})
	}
	return gedio.Format(rules)
}

// sanitizeRuleName maps an arbitrary rule name to a DSL identifier.
func sanitizeRuleName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "rule"
	}
	return string(out)
}

// LoadGraph parses the JSON wire format of a property graph:
//
//	{"nodes": [{"id": "n0", "label": "city", "attrs": {"name": "Helsinki"}}],
//	 "edges": [{"src": "n1", "label": "capital", "dst": "n0"}]}
//
// Node ids are arbitrary strings; the returned map resolves them to
// NodeIDs. Attribute values may be JSON strings, numbers or booleans
// (booleans become 0/1 numbers, matching the paper's examples).
func LoadGraph(data []byte) (*Graph, map[string]NodeID, error) {
	return gedio.UnmarshalGraph(data)
}

// MarshalGraph renders g in the JSON wire format accepted by LoadGraph,
// writing node ids as "n<i>" in insertion order so the output is
// deterministic.
func MarshalGraph(g *Graph) ([]byte, error) {
	return gedio.MarshalGraph(g)
}
