package gedlib

// Observability facade: the injectable observer handle and its
// constructor. The full surface — metric handles, the Prometheus
// exposition, the span ring — lives in gedlib/internal/obs; the
// serving layer consumes it directly (serve mounts /metricsz and
// /tracez), while library callers only ever hand an *Observer to
// WithObserver or serve.Config.Observer.

import "gedlib/internal/obs"

// Observer bundles a metrics registry and a span tracer — the single
// handle the instrumented layers (engine, matcher, shard runners,
// chase, persist, serve) report into. A nil *Observer disables
// observation; instrumented code pays one nil check per site.
type Observer = obs.Observer

// SpanData is one completed traced operation, as retained in the
// observer's recent-trace ring and served by serve's /tracez.
type SpanData = obs.SpanData

// NewObserver returns a full observer: a fresh metrics registry plus a
// recent-trace ring. onSlow, when non-nil, is invoked synchronously
// for every span whose duration meets the Observer.SetSlowOp
// threshold (nil just disables the slow-op log).
func NewObserver(onSlow func(*SpanData)) *Observer {
	return obs.New(onSlow)
}

// WithObserver attaches an observer to the engine: Validate/Apply
// latency histograms, snapshot-cache hit/advance/freeze counters,
// violation-store maintenance counters, per-rule match-plan profiles,
// shard frame traffic and chase round counts all land in its registry.
// A nil observer (the default) keeps the engine unobserved.
func WithObserver(o *Observer) Option {
	return func(e *Engine) { e.obs = o }
}
