package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"unsafe"

	"gedlib"
)

// Checkpoint file layout (all integers little endian):
//
//	 0  magic "GEDCKPT1" (8 bytes)
//	 8  u32 format version (2)
//	12  u32 section count
//	16  u64 graph version
//	24  u32 IEEE CRC32 of everything from the first section's offset on
//	28  u32 payload start offset
//	32  u64 leadership epoch (format ≥ 2)
//	40  section table: count × { u32 id, u32 pad, u64 offset, u64 length }
//	    then 8-aligned sections, each padded to 8 bytes
//
// Offsets are absolute file offsets and 8-aligned, so a loader can mmap
// the file and alias the u32/u64 columns of the GraphImage in place.
//
// Format 1 files (no epoch field, 32-byte header) are still loadable
// and read back as epoch 0.

const (
	ckptMagic         = "GEDCKPT1"
	ckptFormatVersion = 2
	ckptHeaderBytes   = 40
	ckptHeaderBytesV1 = 32
	ckptEntryBytes    = 24
)

// Section ids: the columns of a GraphImage plus the serving metadata.
const (
	secNodeLabel uint32 = iota + 1
	secEdgeSrc
	secEdgeLabel
	secEdgeDst
	secAttrNode
	secAttrName
	secAttrKind
	secAttrVal
	secLabels    // string table
	secAttrNames // string table
	secStrings   // string table
	secNames     // string table: wire names by NodeID
	secRules     // raw DSL source bytes
)

func align8(n int) int { return (n + 7) &^ 7 }

// u32bytes views a []uint32 as raw little-endian bytes for writing.
// (The in-memory representation is LE on every supported platform; the
// explicit encoder below is the portable fallback.)
func u32bytes(xs []uint32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], x)
	}
	return out
}

func u64bytes(xs []uint64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}

// u32view aliases 8-aligned mapped bytes as []uint32 without copying;
// misaligned input (read fallback path) decodes portably instead.
func u32view(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func u64view(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// encodeStringTable lays out a string table: u64 count, u64 end-offsets
// (relative to the data area), then the concatenated bytes.
func encodeStringTable(ss []string) []byte {
	total := 0
	for _, s := range ss {
		total += len(s)
	}
	out := make([]byte, 8*(len(ss)+1)+total)
	binary.LittleEndian.PutUint64(out, uint64(len(ss)))
	off := 0
	data := out[8*(len(ss)+1):]
	for i, s := range ss {
		off += copy(data[off:], s)
		binary.LittleEndian.PutUint64(out[8*(i+1):], uint64(off))
	}
	return out
}

// decodeStringTable parses an encodeStringTable section. The returned
// strings are copies — safe to keep after the mapping is gone.
func decodeStringTable(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("persist: string table too short")
	}
	count := binary.LittleEndian.Uint64(b)
	if count > uint64(len(b)) {
		return nil, fmt.Errorf("persist: implausible string table count %d", count)
	}
	head := 8 * (count + 1)
	if uint64(len(b)) < head {
		return nil, fmt.Errorf("persist: string table header truncated")
	}
	data := b[head:]
	out := make([]string, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		end := binary.LittleEndian.Uint64(b[8*(i+1):])
		if end < prev || end > uint64(len(data)) {
			return nil, fmt.Errorf("persist: string table offsets out of order")
		}
		out[i] = string(data[prev:end])
		prev = end
	}
	return out, nil
}

// writeCheckpoint writes st as ckpt-<version>.ged in dir via a temp
// file + rename, returning the version captured. With sync, the file
// and directory are fsynced before and after the rename, so a crash at
// any point leaves either the old or the new checkpoint fully intact.
// A write that fails partway (disk full, I/O error) is cleaned up the
// same way: the temp file is removed and the previous checkpoint is
// untouched and loadable. epoch is the leadership epoch of the writer;
// recovery uses it to disqualify a checkpoint a deposed leader managed
// to publish past its fence bound.
func (s *Store) writeCheckpoint(dir string, st State, epoch uint64, sync bool) (uint64, error) {
	img := gedlib.ExportImage(st.Graph)

	type section struct {
		id   uint32
		data []byte
	}
	sections := []section{
		{secNodeLabel, u32bytes(img.NodeLabel)},
		{secEdgeSrc, u32bytes(img.EdgeSrc)},
		{secEdgeLabel, u32bytes(img.EdgeLabel)},
		{secEdgeDst, u32bytes(img.EdgeDst)},
		{secAttrNode, u32bytes(img.AttrNode)},
		{secAttrName, u32bytes(img.AttrName)},
		{secAttrKind, img.AttrKind},
		{secAttrVal, u64bytes(img.AttrVal)},
		{secLabels, encodeStringTable(img.Labels)},
		{secAttrNames, encodeStringTable(img.AttrNames)},
		{secStrings, encodeStringTable(img.Strings)},
		{secNames, encodeStringTable(st.Names)},
		{secRules, []byte(st.Rules)},
	}

	payloadStart := align8(ckptHeaderBytes + ckptEntryBytes*len(sections))
	payloadLen := 0
	for _, s := range sections {
		payloadLen += align8(len(s.data))
	}
	buf := make([]byte, payloadStart+payloadLen)
	copy(buf, ckptMagic)
	binary.LittleEndian.PutUint32(buf[8:], ckptFormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(buf[16:], img.Version)
	binary.LittleEndian.PutUint32(buf[28:], uint32(payloadStart))
	binary.LittleEndian.PutUint64(buf[32:], epoch)
	off := payloadStart
	for i, s := range sections {
		e := ckptHeaderBytes + ckptEntryBytes*i
		binary.LittleEndian.PutUint32(buf[e:], s.id)
		binary.LittleEndian.PutUint64(buf[e+8:], uint64(off))
		binary.LittleEndian.PutUint64(buf[e+16:], uint64(len(s.data)))
		copy(buf[off:], s.data)
		off += align8(len(s.data))
	}
	binary.LittleEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[payloadStart:]))

	tmp, err := s.fs.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("persist: write checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = s.fs.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		cleanup()
		return 0, fmt.Errorf("persist: write checkpoint: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			cleanup()
			return 0, fmt.Errorf("persist: sync checkpoint: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return 0, fmt.Errorf("persist: close checkpoint: %w", err)
	}
	if err := s.fs.Rename(tmpName, filepath.Join(dir, ckptName(img.Version))); err != nil {
		cleanup()
		return 0, fmt.Errorf("persist: publish checkpoint: %w", err)
	}
	if sync {
		_ = s.fs.SyncDir(dir)
	}
	return img.Version, nil
}

// loadCheckpoint maps (or reads — see FS.Map) a checkpoint file and
// rebuilds its State, returning the captured graph version and the
// leadership epoch of the writer (0 for format-1 files). Validation is
// end-to-end: magic, format version, CRC, then every image index
// bounds-checked by ImportImage.
func (s *Store) loadCheckpoint(path string) (State, uint64, uint64, error) {
	var zero State
	data, unmap, err := s.fs.Map(path)
	if err != nil {
		return zero, 0, 0, err
	}
	defer unmap()

	if len(data) < ckptHeaderBytesV1 || string(data[:8]) != ckptMagic {
		return zero, 0, 0, fmt.Errorf("persist: %s: not a checkpoint file", path)
	}
	headerBytes := ckptHeaderBytes
	switch v := binary.LittleEndian.Uint32(data[8:]); v {
	case 1:
		headerBytes = ckptHeaderBytesV1
	case ckptFormatVersion:
	default:
		return zero, 0, 0, fmt.Errorf("persist: %s: unsupported checkpoint format %d", path, v)
	}
	if len(data) < headerBytes {
		return zero, 0, 0, fmt.Errorf("persist: %s: corrupt checkpoint header", path)
	}
	nSections := binary.LittleEndian.Uint32(data[12:])
	version := binary.LittleEndian.Uint64(data[16:])
	wantCRC := binary.LittleEndian.Uint32(data[24:])
	payloadStart := binary.LittleEndian.Uint32(data[28:])
	epoch := uint64(0)
	if headerBytes >= ckptHeaderBytes {
		epoch = binary.LittleEndian.Uint64(data[32:])
	}
	if uint64(payloadStart) > uint64(len(data)) ||
		uint64(payloadStart) < uint64(headerBytes+ckptEntryBytes*int(nSections)) {
		return zero, 0, 0, fmt.Errorf("persist: %s: corrupt checkpoint header", path)
	}
	if crc32.ChecksumIEEE(data[payloadStart:]) != wantCRC {
		return zero, 0, 0, fmt.Errorf("persist: %s: checkpoint CRC mismatch", path)
	}
	secs := make(map[uint32][]byte, nSections)
	for i := 0; i < int(nSections); i++ {
		e := headerBytes + ckptEntryBytes*i
		id := binary.LittleEndian.Uint32(data[e:])
		off := binary.LittleEndian.Uint64(data[e+8:])
		n := binary.LittleEndian.Uint64(data[e+16:])
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			return zero, 0, 0, fmt.Errorf("persist: %s: section %d out of bounds", path, id)
		}
		secs[id] = data[off : off+n]
	}

	img := &gedlib.GraphImage{
		Version:   version,
		NodeLabel: u32view(secs[secNodeLabel]),
		EdgeSrc:   u32view(secs[secEdgeSrc]),
		EdgeLabel: u32view(secs[secEdgeLabel]),
		EdgeDst:   u32view(secs[secEdgeDst]),
		AttrNode:  u32view(secs[secAttrNode]),
		AttrName:  u32view(secs[secAttrName]),
		AttrKind:  secs[secAttrKind],
		AttrVal:   u64view(secs[secAttrVal]),
	}
	for _, tbl := range []struct {
		id   uint32
		dst  *[]string
		name string
	}{
		{secLabels, &img.Labels, "labels"},
		{secAttrNames, &img.AttrNames, "attr names"},
		{secStrings, &img.Strings, "strings"},
	} {
		ss, err := decodeStringTable(secs[tbl.id])
		if err != nil {
			return zero, 0, 0, fmt.Errorf("persist: %s: %s: %w", path, tbl.name, err)
		}
		*tbl.dst = ss
	}
	g, err := gedlib.ImportImage(img)
	if err != nil {
		return zero, 0, 0, fmt.Errorf("persist: %s: %w", path, err)
	}
	names, err := decodeStringTable(secs[secNames])
	if err != nil {
		return zero, 0, 0, fmt.Errorf("persist: %s: names: %w", path, err)
	}
	// The graph and the names copy out of the mapping; rules too.
	return State{Graph: g, Names: names, Rules: string(secs[secRules])}, version, epoch, nil
}
