package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Leadership epochs.
//
// Every graph directory carries an EPOCHS file — the fencing authority
// for its single-writer WAL. The file is a short text table:
//
//	gedepochs1
//	<epoch16x> <version16x>
//	...
//
// with one line per leadership transition, epochs strictly ascending: a
// line (E, V) means epoch E took over at graph version V, having
// drained the log to exactly V. Every WAL record (and checkpoint
// header) is stamped with the epoch of the leader that wrote it, and
// the bound gives each record an unambiguous verdict:
//
//	a record of epoch e is fenced off iff some later epoch's bound
//	(the first bound with Epoch > e) has Version < the record's
//	version.
//
// A fenced-off record was written by a deposed leader after its
// successor drained the log — the writer's own fence check refused to
// acknowledge it (see GraphStore.checkFenceLocked), so recovery and
// tailing skip it without losing anything a client was promised.
//
// The file is rewritten whole via temp + fsync + rename + dir sync, so
// a promotion survives any crash: either the old bound table or the
// new one is fully intact, never a torn mix.

const (
	epochsFile  = "EPOCHS"
	epochsMagic = "gedepochs1"
)

// EpochBound records one leadership transition: epoch Epoch took over
// at graph version Version.
type EpochBound struct {
	Epoch   uint64
	Version uint64
}

// readEpochs loads a graph directory's bound table. A missing file is
// epoch 0 with no transitions — every graph starts there.
func (s *Store) readEpochs(dir string) ([]EpochBound, error) {
	data, err := s.fs.ReadFile(filepath.Join(dir, epochsFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: read epochs: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != epochsMagic {
		return nil, fmt.Errorf("persist: %s: not an epochs file", epochsFile)
	}
	var out []EpochBound
	for _, ln := range lines[1:] {
		var b EpochBound
		if _, err := fmt.Sscanf(ln, "%016x %016x", &b.Epoch, &b.Version); err != nil {
			return nil, fmt.Errorf("persist: %s: bad bound line %q", epochsFile, ln)
		}
		if n := len(out); n > 0 && (b.Epoch <= out[n-1].Epoch || b.Version < out[n-1].Version) {
			return nil, fmt.Errorf("persist: %s: bounds out of order at %q", epochsFile, ln)
		}
		out = append(out, b)
	}
	return out, nil
}

// writeEpochs publishes a bound table crash-atomically: temp file,
// fsync, rename over EPOCHS, directory sync. The rename is the
// fencing point — a deposed leader's next fence check observes the new
// table or the old one, never garbage.
func (s *Store) writeEpochs(dir string, bounds []EpochBound) error {
	var sb strings.Builder
	sb.WriteString(epochsMagic + "\n")
	for _, b := range bounds {
		fmt.Fprintf(&sb, "%016x %016x\n", b.Epoch, b.Version)
	}
	tmp, err := s.fs.CreateTemp(dir, ".tmp-epochs-*")
	if err != nil {
		return fmt.Errorf("persist: write epochs: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = s.fs.Remove(tmpName) }
	if _, err := tmp.Write([]byte(sb.String())); err != nil {
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("persist: write epochs: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("persist: sync epochs: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("persist: close epochs: %w", err)
	}
	if err := s.fs.Rename(tmpName, filepath.Join(dir, epochsFile)); err != nil {
		cleanup()
		return fmt.Errorf("persist: publish epochs: %w", err)
	}
	_ = s.fs.SyncDir(dir)
	return nil
}

// currentEpoch is the newest epoch in the table (0 for a fresh graph).
func currentEpoch(bounds []EpochBound) uint64 {
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1].Epoch
}

// boundAfter returns the first bound of an epoch later than e — the
// fence a record stamped with epoch e is judged against — or nil when
// no later epoch exists.
func boundAfter(bounds []EpochBound, e uint64) *EpochBound {
	for i := range bounds {
		if bounds[i].Epoch > e {
			return &bounds[i]
		}
	}
	return nil
}

// staleBeyond reports whether a record stamped (epoch, version) falls
// beyond the fence bound of a later epoch — written by a deposed
// leader after its successor drained the log, never acknowledged.
func staleBeyond(bounds []EpochBound, epoch, version uint64) bool {
	b := boundAfter(bounds, epoch)
	return b != nil && version > b.Version
}

// setBound replaces the bound for b.Epoch (or appends it) and returns
// the table. Promote raises its own bound in place while chasing a
// still-writing deposed leader.
func setBound(bounds []EpochBound, b EpochBound) []EpochBound {
	for i := range bounds {
		if bounds[i].Epoch == b.Epoch {
			bounds[i] = b
			return bounds
		}
	}
	return append(bounds, b)
}

// Promote fences the graph's current leader and reopens the graph for
// writing under the next leadership epoch. The caller becomes the
// single writer the moment Promote returns.
//
// The fence-then-drain loop is what makes this safe against a deposed
// leader that is still alive and appending:
//
//  1. publish a bound for the new epoch at the WAL end the replay has
//     seen (temp+fsync+rename, so it survives a crash mid-promotion);
//  2. re-scan the WAL tail — if the old leader raced more records in
//     before the bound landed, adopt them by raising the bound and go
//     to 1; otherwise the end is stable and the fence is final.
//
// Every record the old leader acknowledged passed its own post-sync
// fence check before the bound it observed, so it is at or below the
// final bound and adopted here; every record beyond the final bound
// was never acknowledged and is skipped by all future recoveries. Zero
// acked writes lost, zero unacked writes resurrected.
func (s *Store) Promote(name string) (*GraphStore, *Recovery, error) {
	dir, err := s.graphDir(name)
	if err != nil {
		return nil, nil, err
	}
	rec, fix, err := s.recover(name)
	if err != nil {
		return nil, nil, err
	}
	bounds, err := s.readEpochs(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: promote %q: %w", name, err)
	}
	// The drain judges raced records against the PRE-promotion bounds:
	// they come from the deposed epoch and are being adopted, so the
	// new epoch's own (still-moving) bound must not fence them.
	oldBounds := append([]EpochBound(nil), bounds...)
	newEpoch := currentEpoch(bounds) + 1
	cur := rec.State.Graph.Version()
	for {
		bounds = setBound(bounds, EpochBound{Epoch: newEpoch, Version: cur})
		if err := s.writeEpochs(dir, bounds); err != nil {
			return nil, nil, fmt.Errorf("persist: promote %q: %w", name, err)
		}
		grew, derr := s.drainTail(dir, rec, oldBounds, &cur, &fix)
		if derr != nil {
			return nil, nil, fmt.Errorf("persist: promote %q: %w", name, derr)
		}
		if !grew {
			break
		}
	}
	rec.Epoch = newEpoch
	gs, err := s.openRecovered(name, dir, rec, fix, newEpoch)
	if err != nil {
		return nil, nil, err
	}
	// Mark the transition in the log itself, so tailing followers learn
	// the new epoch and its fence bound in stream order instead of
	// having to poll the EPOCHS file.
	if err := gs.appendEpochBump(); err != nil {
		_ = gs.Close()
		return nil, nil, fmt.Errorf("persist: promote %q: %w", name, err)
	}
	return gs, rec, nil
}

// drainTail extends a recovery to the current end of the WAL, applying
// any records that landed after the previous read of its segment, and
// following a rotation if one raced in. It reports whether the tail
// position moved. A corrupt frame stops the drain (nothing valid can
// follow it) and records where the writer must truncate.
func (s *Store) drainTail(dir string, rec *Recovery, bounds []EpochBound, cur *uint64, fix **tailFix) (bool, error) {
	if *fix != nil {
		return false, nil
	}
	grew := false
	for {
		segPath := rec.tailSeg
		if segPath == "" {
			segPath = filepath.Join(dir, segName(rec.CheckpointVersion))
			rec.tailSeg = segPath
		}
		data, err := s.fs.ReadFile(segPath)
		if err != nil {
			if os.IsNotExist(err) {
				return grew, nil
			}
			return grew, fmt.Errorf("persist: drain WAL: %w", err)
		}
		if int64(len(data)) > rec.tailOff {
			valid, corrupt, aerr := scanFrames(data[rec.tailOff:], func(payload []byte) error {
				return s.applyRecord(rec, bounds, cur, payload)
			})
			if aerr != nil {
				corrupt = true
			}
			if valid > 0 {
				grew = true
				rec.tailOff += int64(valid)
			}
			if corrupt {
				rec.TruncatedTail = true
				*fix = &tailFix{path: segPath, valid: rec.tailOff}
				return grew, nil
			}
		}
		next := s.nextSegment(dir, segPath, *cur)
		if next == "" {
			return grew, nil
		}
		rec.tailSeg, rec.tailOff = next, 0
		grew = true
	}
}
