package persist

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gedlib"
)

// step mutates g by n random ops and returns the delta + wire names,
// the way the serve batcher feeds AppendDelta.
func step(g *gedlib.Graph, names *[]string, rng *rand.Rand, n int) (*gedlib.Delta, []string) {
	from := g.Version()
	mutate(g, names, rng, n)
	d := g.DeltaSince(from)
	dn := make([]string, len(d.Nodes))
	for i, nd := range d.Nodes {
		dn[i] = (*names)[nd.ID]
	}
	return d, dn
}

func TestEpochsFileRoundTrip(t *testing.T) {
	s := openStore(t, Options{})
	dir := s.Dir()

	// Absent file: epoch 0, no bounds.
	bounds, err := s.readEpochs(dir)
	if err != nil || bounds != nil {
		t.Fatalf("absent EPOCHS: bounds=%v err=%v", bounds, err)
	}
	if e := currentEpoch(bounds); e != 0 {
		t.Fatalf("fresh epoch %d, want 0", e)
	}

	want := []EpochBound{{1, 100}, {2, 180}, {5, 1 << 40}}
	if err := s.writeEpochs(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.readEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d bounds, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bound %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if e := currentEpoch(got); e != 5 {
		t.Fatalf("current epoch %d, want 5", e)
	}
	if b := boundAfter(got, 1); b == nil || b.Epoch != 2 {
		t.Fatalf("boundAfter(1) = %+v, want epoch 2", b)
	}
	if b := boundAfter(got, 5); b != nil {
		t.Fatalf("boundAfter(5) = %+v, want nil", b)
	}
	if !staleBeyond(got, 1, 200) || staleBeyond(got, 1, 180) ||
		staleBeyond(got, 2, 1<<40) || !staleBeyond(got, 2, 1+1<<40) || staleBeyond(got, 5, 1<<50) {
		t.Fatal("staleBeyond verdicts wrong")
	}

	// Corruption: out-of-order bounds and a bad magic both refuse.
	if err := s.writeEpochs(dir, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, epochsFile), []byte("gedepochs1\n0000000000000002 0000000000000010\n0000000000000001 0000000000000020\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readEpochs(dir); err == nil {
		t.Fatal("out-of-order bounds accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, epochsFile), []byte("not-an-epochs-file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readEpochs(dir); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestPromoteFencesOldLeader is the core failover contract: after a
// Promote, the deposed handle's appends, syncs and checkpoints all fail
// with ErrFenced, nothing it acked is lost, and the new handle writes
// under the bumped epoch.
func TestPromoteFencesOldLeader(t *testing.T) {
	s := openStore(t, Options{})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(21))
	mutate(g, &names, rng, 40)
	old, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}

	// Acked epoch-0 history.
	d, dn := step(g, &names, rng, 25)
	if err := old.AppendDelta(d, dn); err != nil {
		t.Fatal(err)
	}
	if err := old.Sync(); err != nil {
		t.Fatal(err)
	}
	ackedVersion := g.Version()

	fresh, rec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if rec.Epoch != 1 || fresh.Epoch() != 1 {
		t.Fatalf("promoted epoch %d/%d, want 1", rec.Epoch, fresh.Epoch())
	}
	if rec.State.Graph.Version() != ackedVersion {
		t.Fatalf("promotion drained to %d, want %d", rec.State.Graph.Version(), ackedVersion)
	}
	assertStateEqual(t, State{Graph: g, Names: names}, rec.State)

	// The deposed handle is fenced on every write path.
	d2, dn2 := step(g, &names, rng, 5)
	if err := old.AppendDelta(d2, dn2); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed append: %v, want ErrFenced", err)
	}
	if err := old.Checkpoint(State{Graph: g, Names: names}); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed checkpoint: %v, want ErrFenced", err)
	}
	if err := old.AppendRules(g.Version(), "r"); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed rules: %v, want ErrFenced", err)
	}
	if st := old.Stats(); !st.Fenced || st.Epoch != 0 {
		t.Fatalf("deposed stats %+v, want fenced at epoch 0", st)
	}

	// The new handle owns the log: appends land and recover under epoch 1.
	ng := rec.State.Graph
	nNames := rec.State.Names
	d3, dn3 := step(ng, &nNames, rng, 15)
	if err := fresh.AppendDelta(d3, dn3); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Sync(); err != nil {
		t.Fatal(err)
	}
	rec2, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Epoch != 1 {
		t.Fatalf("recovered epoch %d, want 1", rec2.Epoch)
	}
	assertStateEqual(t, State{Graph: ng, Names: nNames}, rec2.State)
}

// TestPromoteAdoptsUnsyncedRecords pins the acknowledgement-time fence
// rule: a record the old leader wrote (but had not synced) before the
// promotion is drained and adopted — so the old leader's in-flight
// group commit may still be acked — while the append after it is
// fenced.
func TestPromoteAdoptsUnsyncedRecords(t *testing.T) {
	s := openStore(t, Options{}) // FsyncBatch: ack happens at Sync
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(22))
	mutate(g, &names, rng, 30)
	old, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	d, dn := step(g, &names, rng, 20)
	if err := old.AppendDelta(d, dn); err != nil { // written, not yet synced
		t.Fatal(err)
	}

	fresh, rec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if rec.State.Graph.Version() != g.Version() {
		t.Fatalf("drain stopped at %d, want %d (unsynced record adopted)", rec.State.Graph.Version(), g.Version())
	}

	// The old leader's group commit covering the adopted record still
	// acks — the record is at the fence bound, in the adopted lineage.
	if err := old.Sync(); err != nil {
		t.Fatalf("sync of adopted records: %v, want nil (ackable)", err)
	}
	// But the handle latched fenced: the next write fails before landing.
	d2, dn2 := step(g, &names, rng, 5)
	if err := old.AppendDelta(d2, dn2); !errors.Is(err, ErrFenced) {
		t.Fatalf("post-adoption append: %v, want ErrFenced", err)
	}
}

// TestPostFenceRecordsSkipped forges the race window the fence check
// cannot close: a deposed leader's frame that physically lands in the
// segment after the fence bound. Replay and recovery must skip it —
// it was never acked — and chain the new epoch's records cleanly.
func TestPostFenceRecordsSkipped(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(23))
	mutate(g, &names, rng, 30)
	old, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	_ = old
	fresh, rec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	bound := rec.State.Graph.Version()

	// A stale-epoch frame beyond the bound lands directly in the live
	// segment (simulating an old-leader write() that raced the fence).
	ghost := gedlib.NewGraph()
	_ = ghost.ApplyDelta(g.DeltaSince(0))
	gNames := append([]string(nil), names...)
	gd, gdn := step(ghost, &gNames, rng, 8)
	dir, _ := s.graphDir("kb")
	segs, _ := s.listVersions(dir, "wal-", ".log")
	segPath := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame(encodeDelta(time.Now().UnixNano(), 0, gd, gdn))); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	// The new leader appends its own record from the same bound version.
	ng := rec.State.Graph
	nNames := rec.State.Names
	nd, ndn := step(ng, &nNames, rng, 10)
	if nd.FromVersion != bound {
		t.Fatalf("new leader chains from %d, want %d", nd.FromVersion, bound)
	}
	if err := fresh.AppendDelta(nd, ndn); err != nil {
		t.Fatal(err)
	}

	rec2, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.FencedRecords != 1 {
		t.Fatalf("skipped %d fenced records, want 1", rec2.FencedRecords)
	}
	if rec2.TruncatedTail {
		t.Fatal("fenced record misdiagnosed as corruption")
	}
	assertStateEqual(t, State{Graph: ng, Names: nNames}, rec2.State)
}

// TestStaleCheckpointDisqualified: a checkpoint published by a deposed
// leader past its fence bound must not become the recovery root, even
// when it is the newest file on disk.
func TestStaleCheckpointDisqualified(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(24))
	mutate(g, &names, rng, 30)
	old, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	_ = old
	fresh, rec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	bound := rec.State.Graph.Version()

	// Forge the stale leader racing a checkpoint out beyond the bound
	// (bypassing GraphStore.Checkpoint, whose own fence check refuses).
	ghost := gedlib.NewGraph()
	_ = ghost.ApplyDelta(g.DeltaSince(0))
	gNames := append([]string(nil), names...)
	mutate(ghost, &gNames, rng, 12)
	dir, _ := s.graphDir("kb")
	if _, err := s.writeCheckpoint(dir, State{Graph: ghost, Names: gNames}, 0, false); err != nil {
		t.Fatal(err)
	}
	if ghost.Version() <= bound {
		t.Fatalf("forged checkpoint at %d not beyond bound %d", ghost.Version(), bound)
	}

	rec2, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.CheckpointVersion > bound {
		t.Fatalf("recovery rooted at fenced checkpoint %d (bound %d)", rec2.CheckpointVersion, bound)
	}
	if rec2.State.Graph.Version() != bound {
		t.Fatalf("recovered version %d, want %d", rec2.State.Graph.Version(), bound)
	}
	assertStateEqual(t, State{Graph: g, Names: names}, rec2.State)
}

// TestTailSurfacesEpochBump: a live tailer sees the promotion as an
// EpochBump record in stream order and keeps applying the new epoch's
// records seamlessly.
func TestTailSurfacesEpochBump(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(25))
	mutate(g, &names, rng, 30)
	old, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}

	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	replica := rec.State.Graph
	type seen struct {
		bump    bool
		epoch   uint64
		version uint64
	}
	events := make(chan seen, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- s.Tail(ctx, "kb", rec, time.Millisecond, func(tr TailRecord) error {
			if tr.Delta != nil {
				if err := replica.ApplyDelta(tr.Delta); err != nil {
					return err
				}
			}
			events <- seen{bump: tr.EpochBump, epoch: tr.Epoch, version: tr.Version}
			return nil
		})
	}()

	d, dn := step(g, &names, rng, 10)
	if err := old.AppendDelta(d, dn); err != nil {
		t.Fatal(err)
	}
	fresh, prec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	ng, nNames := prec.State.Graph, prec.State.Names
	nd, ndn := step(ng, &nNames, rng, 10)
	if err := fresh.AppendDelta(nd, ndn); err != nil {
		t.Fatal(err)
	}

	var got []seen
	deadline := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-events:
			got = append(got, ev)
		case err := <-tailErr:
			t.Fatalf("tail died: %v", err)
		case <-deadline:
			t.Fatalf("timed out after %d events: %+v", len(got), got)
		}
	}
	if got[0].bump || got[0].epoch != 0 {
		t.Fatalf("event 0 = %+v, want epoch-0 delta", got[0])
	}
	if !got[1].bump || got[1].epoch != 1 || got[1].version != g.Version() {
		t.Fatalf("event 1 = %+v, want epoch-1 bump at version %d", got[1], g.Version())
	}
	if got[2].bump || got[2].epoch != 1 {
		t.Fatalf("event 2 = %+v, want epoch-1 delta", got[2])
	}
	cancel()
	<-tailErr
	if replica.String() != ng.String() {
		t.Fatal("replica diverged across the promotion")
	}
}

// TestTailRotationLandsMidRead: the tailer blocks inside fn (mid-scan
// of the old segment) while the leader rotates twice; on resume it must
// drain the old segment, hop both rotations, and converge. This is the
// rotation-lands-mid-read case the poll loop's nextSegment hop covers.
func TestTailRotationLandsMidRead(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff, CheckpointEvery: 1 << 30, RetainCheckpoints: 64})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(26))
	mutate(g, &names, rng, 20)
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	d, dn := step(g, &names, rng, 10)
	if err := gs.AppendDelta(d, dn); err != nil {
		t.Fatal(err)
	}

	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	first := true
	replica := rec.State.Graph
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := make(chan uint64, 64)
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- s.Tail(ctx, "kb", rec, time.Millisecond, func(tr TailRecord) error {
			if first {
				first = false
				close(entered)
				<-gate // leader rotates twice while we sit here
			}
			if tr.Delta != nil {
				if err := replica.ApplyDelta(tr.Delta); err != nil {
					return err
				}
				applied <- tr.Delta.ToVersion
			}
			return nil
		})
	}()

	// First post-recovery record: unblocks the scan into fn.
	d, dn = step(g, &names, rng, 8)
	if err := gs.AppendDelta(d, dn); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Two rotations land while the tailer is blocked mid-read.
	for i := 0; i < 2; i++ {
		if err := gs.Checkpoint(State{Graph: g, Names: names}); err != nil {
			t.Fatal(err)
		}
		d, dn = step(g, &names, rng, 8)
		if err := gs.AppendDelta(d, dn); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)

	deadline := time.After(5 * time.Second)
	for caught := false; !caught; {
		select {
		case v := <-applied:
			caught = v == g.Version()
		case err := <-tailErr:
			t.Fatalf("tail died: %v", err)
		case <-deadline:
			t.Fatalf("replica never caught up to leader at %d", g.Version())
		}
	}
	cancel()
	if err := <-tailErr; err != context.Canceled {
		t.Fatalf("tail exit: %v", err)
	}
	if replica.String() != g.String() {
		t.Fatal("replica diverged across mid-read rotations")
	}
	_ = gs.Close()
}

// TestTailEpochBumpThenTornTail: an epoch bump streams through, then a
// torn frame appears at the live tail. The tailer must deliver the
// bump, sit patiently on the torn frame (a write in flight), and
// consume the record once the writer repairs and completes it.
func TestTailEpochBumpThenTornTail(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(27))
	mutate(g, &names, rng, 20)
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	_ = gs

	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	replica := rec.State.Graph
	bumps := make(chan uint64, 8)
	deltas := make(chan uint64, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- s.Tail(ctx, "kb", rec, time.Millisecond, func(tr TailRecord) error {
			switch {
			case tr.EpochBump:
				bumps <- tr.Epoch
			case tr.Delta != nil:
				if err := replica.ApplyDelta(tr.Delta); err != nil {
					return err
				}
				deltas <- tr.Delta.ToVersion
			}
			return nil
		})
	}()

	fresh, prec, err := s.Promote("kb")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	select {
	case e := <-bumps:
		if e != 1 {
			t.Fatalf("bump epoch %d, want 1", e)
		}
	case err := <-tailErr:
		t.Fatalf("tail died: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("bump never delivered")
	}

	// A torn frame lands at the live tail (write in flight / crash).
	ng, nNames := prec.State.Graph, prec.State.Names
	nd, ndn := step(ng, &nNames, rng, 10)
	whole := frame(encodeDelta(time.Now().UnixNano(), 1, nd, ndn))
	dir, _ := s.graphDir("kb")
	segs, _ := s.listVersions(dir, "wal-", ".log")
	segPath := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	goodLen := st.Size()
	if _, err := f.Write(whole[:len(whole)/2]); err != nil {
		t.Fatal(err)
	}

	// The torn frame must not surface as a record or an error.
	select {
	case v := <-deltas:
		t.Fatalf("torn frame delivered as version %d", v)
	case err := <-tailErr:
		t.Fatalf("tail died on torn frame: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Writer repairs: truncate the garbage, append the whole frame.
	if err := f.Truncate(goodLen); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(whole); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	select {
	case v := <-deltas:
		if v != ng.Version() {
			t.Fatalf("delivered version %d, want %d", v, ng.Version())
		}
	case err := <-tailErr:
		t.Fatalf("tail died: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("repaired record never delivered")
	}
	cancel()
	<-tailErr
	if replica.String() != ng.String() {
		t.Fatal("replica diverged across torn-tail repair")
	}
}
