package persist

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// tailStallPolls is how many growth-free polls a corrupt-looking tail
// frame survives before Tail gives up on it. A torn frame that is
// merely mid-write grows (or becomes valid) almost immediately; one
// that never changes is real corruption and the follower must
// re-recover rather than spin.
const tailStallPolls = 200

// Tail streams the records of a graph's WAL from rec's recovery point
// onward, calling fn for each in order. It follows segment rotations
// and polls for growth every poll interval. Leadership transitions are
// surfaced: an epoch-bump record is delivered to fn (EpochBump set)
// and from then on records of deposed epochs beyond the new fence
// bound are silently skipped, exactly as recovery skips them. Tail
// returns only on failure: ctx cancellation (ctx.Err()), fn error,
// ErrLagBehind when the position was compacted away (re-recover and
// call again with the fresh Recovery), or a corruption diagnosis. rec
// must come from Recover/OpenGraph of the same graph and must not be
// reused across Tail calls.
func (s *Store) Tail(ctx context.Context, name string, rec *Recovery, poll time.Duration, fn func(TailRecord) error) error {
	dir, err := s.graphDir(name)
	if err != nil {
		return err
	}
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	segPath := rec.tailSeg
	if segPath == "" {
		segPath = filepath.Join(dir, segName(rec.CheckpointVersion))
	}
	off := rec.tailOff
	version := rec.State.Graph.Version()
	bounds, _ := s.readEpochs(dir)

	var f File
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()
	stalled := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if f == nil {
			f, err = s.fs.OpenFile(segPath, os.O_RDONLY, 0)
			if err != nil {
				if os.IsNotExist(err) {
					// Our segment is gone: compacted (we lag more than the
					// retention) or never created yet (leader crashed
					// between checkpoint and rotation — the next poll or a
					// re-recover sorts it out).
					if next := s.nextSegment(dir, segPath, version); next != "" {
						segPath, off = next, 0
						continue
					}
					return fmt.Errorf("%w (graph %q, segment %s)", ErrLagBehind, name, filepath.Base(segPath))
				}
				return fmt.Errorf("persist: tail open: %w", err)
			}
		}
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("persist: tail stat: %w", err)
		}
		if st.Size() > off {
			buf := make([]byte, st.Size()-off)
			if _, err := io.ReadFull(io.NewSectionReader(f, off, int64(len(buf))), buf); err != nil {
				return fmt.Errorf("persist: tail read: %w", err)
			}
			// New data may include a promotion's aftermath: refresh the
			// fence table so a deposed leader's post-fence records are
			// skipped even before their epoch-bump record streams by.
			if nb, berr := s.readEpochs(dir); berr == nil {
				bounds = nb
			}
			var fnErr error
			valid, corrupt, err := scanFrames(buf, func(payload []byte) error {
				tr, derr := decodeRecord(payload)
				if derr != nil {
					return derr
				}
				if tr.EpochBump {
					bounds = setBound(bounds, EpochBound{Epoch: tr.Epoch, Version: tr.Version})
				} else if staleBeyond(bounds, tr.Epoch, tr.Version) {
					return nil // fenced-off record from a deposed leader; never acked
				}
				if tr.Delta != nil {
					if tr.Delta.ToVersion <= version {
						return nil // pre-recovery-point record in a shared segment
					}
					if tr.Delta.FromVersion != version {
						return fmt.Errorf("persist: tail gap: record from version %d at version %d", tr.Delta.FromVersion, version)
					}
				}
				if ferr := fn(tr); ferr != nil {
					fnErr = ferr
					return ferr
				}
				if tr.Delta != nil {
					version = tr.Delta.ToVersion
				}
				return nil
			})
			if fnErr != nil {
				return fnErr
			}
			if err != nil {
				return err
			}
			if valid > 0 {
				off += int64(valid)
				stalled = 0
			}
			if corrupt {
				// A torn frame at the live tail is usually a write in
				// flight; give it time to settle, then diagnose.
				stalled++
				if stalled > tailStallPolls {
					return fmt.Errorf("persist: tail of %s corrupt at offset %d", filepath.Base(segPath), off)
				}
			}
			if valid > 0 && !corrupt {
				continue // drained cleanly; look again immediately
			}
		} else {
			// No growth: maybe the leader rotated onto a new segment.
			if next := s.nextSegment(dir, segPath, version); next != "" {
				_ = f.Close()
				f = nil
				segPath, off, stalled = next, 0, 0
				continue
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// nextSegment finds the segment after cur that the tail should switch
// to: the largest segment start ≤ version that is newer than cur's
// start. (Rotation happens at a checkpoint version the tail has fully
// consumed, so switching at version is gap-free; records below the
// recovery point are version-skipped anyway.)
func (s *Store) nextSegment(dir, cur string, version uint64) string {
	curStart, _ := parseVersioned(filepath.Base(cur), "wal-", ".log")
	segs, err := s.listVersions(dir, "wal-", ".log")
	if err != nil {
		return ""
	}
	best := ""
	for _, v := range segs {
		if v > curStart && v <= version {
			best = filepath.Join(dir, segName(v))
		}
	}
	return best
}
