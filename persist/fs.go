package persist

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// FS abstracts every filesystem operation the store performs, so the
// whole durability stack — WAL appends, checkpoint temp+rename,
// recovery reads, follower tailing — can run against an injected
// implementation. Production uses the OS-backed default (OSFS);
// internal/fault layers deterministic fault schedules (ENOSPC budgets,
// EIO on the Kth sync, torn writes, latency) over any base FS for
// chaos testing. The seam is a handful of interface calls on paths the
// disk itself dominates, so it costs nothing measurable when the
// default is in place.
type FS interface {
	// MkdirAll and Mkdir mirror the os functions; Mkdir must return an
	// os.IsExist-satisfying error for an existing directory.
	MkdirAll(dir string, perm os.FileMode) error
	Mkdir(dir string, perm os.FileMode) error
	// OpenFile opens name with os.OpenFile semantics. WAL segments are
	// opened O_CREATE|O_WRONLY|O_APPEND for writing and O_RDONLY for
	// tailing.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates an exclusive temp file in dir with os.CreateTemp
	// pattern semantics; checkpoints are staged through it.
	CreateTemp(dir, pattern string) (File, error)
	ReadDir(dir string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(dir string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and removals in it
	// durable. Best effort: some filesystems refuse directory fsync.
	SyncDir(dir string) error
	// Map maps (or reads) a whole file read-only, returning the bytes
	// and an unmapping closure. The checkpoint loader aliases typed
	// column views into the returned bytes.
	Map(name string) ([]byte, func(), error)
}

// File is the handle FS.OpenFile/CreateTemp return — the subset of
// *os.File the store uses. Write is append-positioned for WAL segments
// (opened O_APPEND); ReadAt serves follower tail reads.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// OSFS returns the default FS backed directly by package os.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) Mkdir(dir string, perm os.FileMode) error    { return os.Mkdir(dir, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) RemoveAll(dir string) error                { return os.RemoveAll(dir) }
func (osFS) Truncate(name string, size int64) error    { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Map(name string) ([]byte, func(), error) { return mapFile(name) }

// transientErrnos are the I/O errors worth retrying in place: the
// operation may well succeed a moment later without anything having
// been repaired. Everything else — ENOSPC, EROFS, unknown failures —
// is treated as permanent: retrying in a hot loop cannot help, the
// graph must degrade and recover through the heal path. Note that a
// FAILED FSYNC is never retried regardless of class (the kernel may
// have dropped the dirty pages on the first failure, so a succeeding
// retry proves nothing); serve degrades on it and heals by rewriting a
// full checkpoint.
var transientErrnos = []error{
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.EBUSY,
	syscall.ETIMEDOUT,
	syscall.EIO,
}

// IsTransient reports whether err is a plausibly transient I/O error —
// one a caller may retry with backoff before giving the operation up
// as a permanent failure.
func IsTransient(err error) bool {
	for _, e := range transientErrnos {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}
