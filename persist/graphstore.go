package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gedlib"
	"gedlib/internal/obs"
)

// GraphStore is the single-writer durability handle for one graph: the
// serve batcher appends a delta record per coalesced flush, syncs per
// the fsync mode, and writes a checkpoint (rotating the WAL) when
// enough ops have accumulated. Methods are safe for concurrent use,
// but there must be only one GraphStore per graph directory per
// process fleet — the WAL is an append-only single-writer log.
type GraphStore struct {
	store *Store
	name  string
	dir   string

	mu       sync.Mutex
	seg      File   // current WAL segment, opened for append
	segStart uint64 // graph version the segment starts at
	closed   bool
	// dirtyTail is set after a failed append: the segment may end in a
	// torn frame, and the next append must truncate back to segBytes
	// (the last known-good offset) before writing, or a retried record
	// would land after garbage and recovery would truncate it away.
	dirtyTail bool

	version     uint64 // graph version after the last appended record
	ckptVersion uint64 // version of the newest checkpoint
	opsSince    int    // logical ops appended since that checkpoint
	segBytes    int64  // bytes in the current segment
	records     uint64 // records appended by this handle
	lastSync    time.Duration
	pendingSync bool

	// epoch is the leadership epoch stamped onto every record this
	// handle appends. fenced latches once a later epoch's bound is
	// observed in the EPOCHS file: from then on every append and sync
	// fails with ErrFenced (fencedBy says who won). See epoch.go.
	epoch    uint64
	fenced   bool
	fencedBy EpochBound

	// metric handles from the store's observer registry; all nil (no-op)
	// when the store is unobserved.
	mBytes   *obs.Counter
	mRecords *obs.Counter
	mFsync   *obs.Histogram
	mCkpt    *obs.Histogram
	mCkptN   *obs.Counter
}

// initMetrics resolves the handle's per-graph metric handles; a nil
// registry yields nil no-op handles.
func (gs *GraphStore) initMetrics() {
	reg := gs.store.reg
	gs.mBytes = reg.Counter("ged_wal_bytes_total", "bytes appended to the WAL", "graph", gs.name)
	gs.mRecords = reg.Counter("ged_wal_records_total", "records appended to the WAL", "graph", gs.name)
	gs.mFsync = reg.Histogram("ged_wal_fsync_seconds", "WAL fsync duration", "graph", gs.name)
	gs.mCkpt = reg.Histogram("ged_checkpoint_seconds", "checkpoint write + rotate + compact duration", "graph", gs.name)
	gs.mCkptN = reg.Counter("ged_checkpoints_total", "checkpoints written", "graph", gs.name)
}

// GraphStoreStats is a point-in-time snapshot of durability counters.
type GraphStoreStats struct {
	Version            uint64
	CheckpointVersion  uint64
	OpsSinceCheckpoint int
	WALBytes           int64 // bytes in the current segment
	WALRecords         uint64
	LastSync           time.Duration
	Fsync              FsyncMode
	Epoch              uint64 // leadership epoch this handle writes under
	Fenced             bool   // a later epoch took over; appends fail with ErrFenced
}

// Create initializes a graph's directory: an initial checkpoint of st
// and an empty WAL segment rotated at it. It fails with ErrExists if
// the directory is already there.
func (s *Store) Create(name string, st State) (*GraphStore, error) {
	dir, err := s.graphDir(name)
	if err != nil {
		return nil, err
	}
	if err := s.fs.Mkdir(dir, 0o755); err != nil {
		if os.IsExist(err) {
			return nil, ErrExists
		}
		return nil, fmt.Errorf("persist: create graph: %w", err)
	}
	gs := &GraphStore{store: s, name: name, dir: dir, version: st.Graph.Version()}
	gs.initMetrics()
	if err := gs.Checkpoint(st); err != nil {
		return nil, err
	}
	return gs, nil
}

// Name returns the graph's name.
func (gs *GraphStore) Name() string { return gs.name }

// AppendDelta appends one delta record; names are the wire names of
// d.Nodes (parallel, "" for unnamed). In FsyncAlways mode the record
// is synced before returning; otherwise it is left for the next Sync.
func (gs *GraphStore) AppendDelta(d *gedlib.Delta, names []string) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	if err := gs.checkFenceLocked(false); err != nil {
		return err
	}
	if err := gs.appendLocked(encodeDelta(time.Now().UnixNano(), gs.epoch, d, names)); err != nil {
		return err
	}
	gs.version = d.ToVersion
	gs.opsSince += d.Size()
	if gs.store.opts.Fsync == FsyncAlways {
		return gs.syncLocked()
	}
	gs.pendingSync = true
	return nil
}

// AppendRules appends a rules-registration record (the DSL source, at
// the given graph version) and syncs it immediately (rules changes are
// rare and must not be lost to a crash between flushes) unless fsync
// is off.
func (gs *GraphStore) AppendRules(version uint64, src string) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	if err := gs.checkFenceLocked(false); err != nil {
		return err
	}
	if err := gs.appendLocked(encodeRules(time.Now().UnixNano(), gs.epoch, version, src)); err != nil {
		return err
	}
	if gs.store.opts.Fsync == FsyncOff {
		return nil
	}
	return gs.syncLocked()
}

// Sync is the group-commit point: in FsyncBatch mode it fsyncs the
// segment once, covering every record appended since the last sync. In
// FsyncAlways mode records are already down; in FsyncOff it is a no-op.
func (gs *GraphStore) Sync() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	if gs.store.opts.Fsync != FsyncBatch || !gs.pendingSync {
		return nil
	}
	return gs.syncLocked()
}

func (gs *GraphStore) syncLocked() error {
	start := time.Now()
	if err := gs.seg.Sync(); err != nil {
		return fmt.Errorf("persist: fsync WAL: %w", err)
	}
	gs.lastSync = time.Since(start)
	gs.mFsync.Observe(gs.lastSync)
	gs.pendingSync = false
	// Durable-but-maybe-deposed: before this sync is acknowledged to a
	// client, confirm no later epoch fenced us off. Records synced at or
	// below a successor's bound were adopted by it (the caller may still
	// ack them); anything later is gone from the adopted lineage and
	// must fail. This check ordering — write, sync, then read the fence
	// file — against Promote's bump-then-drain is what makes "acked ⇒
	// adopted" a total-order argument rather than a race.
	return gs.checkFenceLocked(true)
}

// checkFenceLocked consults the graph's EPOCHS file for a bound
// published by a later epoch. atAck selects the acknowledgement-time
// rule: records already durable at or below the successor's fence
// bound were adopted by it, so the sync that covered them may still be
// acknowledged — but the handle latches fenced either way and refuses
// everything after. Failing to read the fence file is an I/O fault,
// not a fencing verdict: the operation fails without latching, so a
// leader that cannot confirm its own leadership never acks.
func (gs *GraphStore) checkFenceLocked(atAck bool) error {
	if gs.fenced {
		return gs.fenceErrLocked()
	}
	bounds, err := gs.store.readEpochs(gs.dir)
	if err != nil {
		return fmt.Errorf("persist: fence check: %w", err)
	}
	b := boundAfter(bounds, gs.epoch)
	if b == nil {
		return nil
	}
	gs.fenced, gs.fencedBy = true, *b
	if atAck && gs.version <= b.Version {
		return nil
	}
	return gs.fenceErrLocked()
}

func (gs *GraphStore) fenceErrLocked() error {
	return fmt.Errorf("%w: graph %q epoch %d deposed by epoch %d (fence bound at version %d)",
		ErrFenced, gs.name, gs.epoch, gs.fencedBy.Epoch, gs.fencedBy.Version)
}

// Epoch returns the leadership epoch this handle stamps onto appended
// records.
func (gs *GraphStore) Epoch() uint64 {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.epoch
}

// AssumeEpoch overrides the epoch this handle writes under and runs an
// eager fence check. A rebooting leader that may have been deposed
// while down passes the epoch it last held: if a successor has taken
// over since, the check returns ErrFenced immediately and the caller
// demotes to read-only instead of writing into a log it no longer
// owns. The handle stays usable for reads and stats either way.
func (gs *GraphStore) AssumeEpoch(epoch uint64) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	gs.epoch = epoch
	gs.fenced = false
	return gs.checkFenceLocked(false)
}

// appendEpochBump logs the handle's epoch and its fence bound — called
// once by Promote so tailing followers learn the transition in stream
// order.
func (gs *GraphStore) appendEpochBump() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	if err := gs.appendLocked(encodeEpochBump(time.Now().UnixNano(), gs.epoch, gs.version)); err != nil {
		return err
	}
	if gs.store.opts.Fsync == FsyncOff {
		return nil
	}
	return gs.syncLocked()
}

func (gs *GraphStore) appendLocked(payload []byte) error {
	if gs.dirtyTail {
		if err := gs.seg.Truncate(gs.segBytes); err != nil {
			return fmt.Errorf("persist: repair torn WAL tail: %w", err)
		}
		gs.dirtyTail = false
	}
	b := frame(payload)
	if _, err := gs.seg.Write(b); err != nil {
		// The kernel may have written a prefix of the frame even on
		// error (a torn write); mark the tail suspect so the next append
		// repairs it first.
		gs.dirtyTail = true
		return fmt.Errorf("persist: append WAL record: %w", err)
	}
	gs.segBytes += int64(len(b))
	gs.records++
	gs.mBytes.Add(uint64(len(b)))
	gs.mRecords.Inc()
	return nil
}

// CheckpointDue reports whether enough ops accumulated since the last
// checkpoint to warrant a new one.
func (gs *GraphStore) CheckpointDue() bool {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.opsSince >= gs.store.opts.CheckpointEvery
}

// Checkpoint writes st as a new checkpoint, rotates the WAL onto a
// fresh segment starting at st's version, and compacts: checkpoints
// beyond the retention and the segments older than the oldest retained
// checkpoint are deleted. A checkpoint at the current checkpoint
// version is a no-op. The caller must pass the same graph whose deltas
// it has been appending, quiesced (serve calls this under the entry
// lock).
func (gs *GraphStore) Checkpoint(st State) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return ErrClosed
	}
	v := st.Graph.Version()
	if v == gs.ckptVersion && gs.seg != nil {
		return nil
	}
	// A deposed leader must not publish a checkpoint: it would become
	// the newest (and preferred) recovery root while containing fenced
	// state. Recovery also disqualifies stale checkpoints by the epoch
	// in their header, but refusing here keeps the directory clean.
	if err := gs.checkFenceLocked(false); err != nil {
		return err
	}
	ckptStart := time.Now()
	// Flush pending records first so the rotate boundary is clean. A
	// failed sync here does NOT abort the checkpoint: the image below
	// captures every record's effect directly, so a full checkpoint is
	// exactly the recovery path from an untrustworthy WAL tail (a failed
	// fsync may have dropped dirty pages — re-syncing proves nothing,
	// rewriting the state does).
	if gs.seg != nil && gs.store.opts.Fsync != FsyncOff && gs.pendingSync {
		_ = gs.syncLocked()
		if gs.fenced { // the sync's own fence check may have latched
			return gs.fenceErrLocked()
		}
	}
	if _, err := gs.store.writeCheckpoint(gs.dir, st, gs.epoch, gs.store.opts.Fsync != FsyncOff); err != nil {
		return err
	}
	// Rotate: further records land in a fresh segment named after v.
	if gs.seg != nil {
		_ = gs.seg.Close()
	}
	seg, err := gs.store.fs.OpenFile(filepath.Join(gs.dir, segName(v)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: rotate WAL: %w", err)
	}
	gs.seg, gs.segStart, gs.segBytes, gs.dirtyTail = seg, v, 0, false
	if st, err := seg.Stat(); err == nil {
		gs.segBytes = st.Size() // crash between rotate and compact can leave a nonempty reopened segment
	}
	gs.version, gs.ckptVersion, gs.opsSince, gs.pendingSync = v, v, 0, false
	gs.compactLocked()
	if gs.store.opts.Fsync != FsyncOff {
		_ = gs.store.fs.SyncDir(gs.dir)
	}
	gs.mCkpt.Observe(time.Since(ckptStart))
	gs.mCkptN.Inc()
	return nil
}

// compactLocked deletes checkpoints beyond the retention bound and WAL
// segments no retained checkpoint needs for replay.
func (gs *GraphStore) compactLocked() {
	ckpts, err := gs.store.listVersions(gs.dir, "ckpt-", ".ged")
	if err != nil || len(ckpts) == 0 {
		return
	}
	keep := gs.store.opts.RetainCheckpoints
	if len(ckpts) > keep {
		for _, v := range ckpts[:len(ckpts)-keep] {
			_ = gs.store.fs.Remove(filepath.Join(gs.dir, ckptName(v)))
		}
		ckpts = ckpts[len(ckpts)-keep:]
	}
	oldest := ckpts[0]
	segs, err := gs.store.listVersions(gs.dir, "wal-", ".log")
	if err != nil {
		return
	}
	// A segment is needed if it is the one covering `oldest` (the last
	// segment starting at or before it) or any later one.
	covering := uint64(0)
	for _, v := range segs {
		if v <= oldest {
			covering = v
		}
	}
	for _, v := range segs {
		if v < covering {
			_ = gs.store.fs.Remove(filepath.Join(gs.dir, segName(v)))
		}
	}
}

// Stats reports the handle's durability counters.
func (gs *GraphStore) Stats() GraphStoreStats {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return GraphStoreStats{
		Version:            gs.version,
		CheckpointVersion:  gs.ckptVersion,
		OpsSinceCheckpoint: gs.opsSince,
		WALBytes:           gs.segBytes,
		WALRecords:         gs.records,
		LastSync:           gs.lastSync,
		Fsync:              gs.store.opts.Fsync,
		Epoch:              gs.epoch,
		Fenced:             gs.fenced,
	}
}

// Close syncs outstanding records and releases the segment handle.
func (gs *GraphStore) Close() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return nil
	}
	gs.closed = true
	var err error
	if gs.seg != nil {
		if gs.store.opts.Fsync != FsyncOff && gs.pendingSync {
			start := time.Now()
			err = gs.seg.Sync()
			gs.lastSync = time.Since(start)
		}
		if cerr := gs.seg.Close(); err == nil {
			err = cerr
		}
		gs.seg = nil
	}
	return err
}
