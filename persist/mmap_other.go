//go:build !unix

package persist

import "os"

// mapFile on platforms without syscall.Mmap reads the whole file; the
// checkpoint loader's typed views fall back to portable decoding when
// the heap bytes happen to be misaligned.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
