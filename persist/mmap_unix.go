//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps a whole file read-only and returns the bytes plus the
// unmapping closure. Checkpoint sections are 8-aligned in the file and
// page-aligned mappings preserve that, so the loader's typed views
// alias the mapping without copying.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("persist: %s: too large to map", path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return data, func() {}, nil
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
