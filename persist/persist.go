// Package persist is the durability layer under the serve subsystem:
// per-graph append-only delta WALs, mmap-able checkpoint files, and the
// recovery and log-tailing machinery that turns them into restartable
// leaders and read-only followers.
//
// # Layout
//
// A Store is a directory; each graph owns a subdirectory named after it:
//
//	<dir>/<graph>/ckpt-<version16x>.ged   checkpoint at that version
//	<dir>/<graph>/wal-<version16x>.log    WAL segment starting there
//
// # WAL format
//
// A segment is a sequence of length+CRC framed records:
//
//	u32 payload length | u32 IEEE CRC32 of payload | payload
//
// (little endian). The payload's first byte is the record kind — a
// serialized Delta (the logical ops Graph.DeltaSince captures, plus the
// wire names of added nodes), or a rules registration (the DSL source).
// Every record carries its append wall-clock time, which is what
// follower staleness is measured against. A torn or corrupted tail
// frame is detected by the CRC, reported by recovery, and truncated —
// never crashed on — when the graph is reopened for writing.
//
// Records are appended by the serve batcher's flush, one record per
// coalesced batch, and fsynced per the configured mode: FsyncAlways
// syncs every record, FsyncBatch rides the group commit (one fsync per
// flush, amortized over every write the batch coalesced), FsyncOff
// leaves syncing to the OS.
//
// # Checkpoints
//
// A checkpoint is a GraphImage — symbol tables plus fixed-width
// columnar node/edge/attribute rows — laid out section by section
// behind a versioned header with a whole-payload CRC, 8-byte aligned so
// a loader can mmap the file and alias the numeric columns in place.
// Checkpoints are written to a temp file, fsynced, and renamed, so a
// crash mid-checkpoint leaves the previous one intact. Writing a
// checkpoint at version V rotates the WAL onto a fresh segment
// wal-<V>.log; segments older than the retained checkpoints are
// deleted. Recovery is therefore "load newest valid checkpoint, replay
// the log tail": O(|G|) for the map plus O(|Δ since checkpoint|) for
// the replay, never a full-history rebuild.
//
// # Followers
//
// Store.Tail streams a graph's records from a recovery point onward,
// following segment rotations and polling for growth, which is all a
// read replica needs: recover once, tail forever, apply each delta to
// its own graph. ErrLagBehind reports a tail position whose segment was
// compacted away (the follower fell more than the checkpoint retention
// behind); the caller re-recovers and resumes.
//
// # Leadership epochs and fencing
//
// The WAL is single-writer, and failover must keep it that way even
// when a deposed leader does not know it was deposed. Every record and
// checkpoint header is stamped with a leadership epoch; the per-graph
// EPOCHS file (see epoch.go) records each transition's fence bound —
// the version the new epoch drained the log to before taking over.
// Store.Promote publishes the next epoch's bound crash-atomically
// (temp+fsync+rename) and re-drains until the WAL end is stable; a
// writing handle re-checks the fence before every append and after
// every fsync, so a deposed leader's first post-fence operation fails
// with ErrFenced before it is acknowledged. Records a deposed leader
// raced in beyond the fence bound are skipped by recovery and Tail —
// they were never acked, so skipping them loses nothing and prevents
// split-brain lineages. Tail delivers epoch-bump records (EpochBump)
// so followers learn transitions in stream order.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gedlib"
	"gedlib/internal/obs"
)

// FsyncMode selects when appended WAL records are fsynced.
type FsyncMode int

const (
	// FsyncBatch syncs once per Sync() call — the serve batcher calls it
	// once per coalesced flush, so the fsync is amortized over every
	// write the batch merged. The default.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs every appended record.
	FsyncAlways
	// FsyncOff never syncs; durability is whatever the OS page cache
	// provides. Crash-consistency (CRC framing, checkpoint rename) still
	// holds — only the freshness of the surviving prefix is at risk.
	FsyncOff
)

// ParseFsyncMode parses "always", "batch" (or "") and "off".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync mode %q (want always, batch or off)", s)
}

// String renders the mode the way ParseFsyncMode reads it.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "batch"
	}
}

// Options tunes a Store. The zero value selects every default.
type Options struct {
	// Fsync is the WAL sync policy. Default FsyncBatch.
	Fsync FsyncMode
	// CheckpointEvery is how many logical ops may accumulate in the WAL
	// before CheckpointDue reports true. Default 4096.
	CheckpointEvery int
	// RetainCheckpoints is how many checkpoints (and the WAL segments
	// they anchor) survive compaction. More retention gives lagging
	// followers more slack before ErrLagBehind. Default 2.
	RetainCheckpoints int
	// FS overrides the filesystem every store operation goes through —
	// fault injection and tests. nil selects the OS-backed default.
	FS FS
	// Observer, when non-nil, receives the store's durability metrics:
	// per-graph WAL bytes/records, fsync and checkpoint durations, and
	// recovery replay time. serve passes its own observer here so the
	// whole pipeline lands in one registry.
	Observer *gedlib.Observer
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 4096
	}
	if o.RetainCheckpoints <= 0 {
		o.RetainCheckpoints = 2
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// Errors reported by the store.
var (
	ErrClosed   = errors.New("persist: store closed")
	ErrNotFound = errors.New("persist: no such graph")
	ErrExists   = errors.New("persist: graph already exists")
	// ErrLagBehind reports a tail position whose WAL segment was
	// compacted away; the tailer must re-recover and resume from the
	// fresh recovery point.
	ErrLagBehind = errors.New("persist: tail position compacted away; re-recover")
	// ErrFenced reports that a later leadership epoch has taken over the
	// graph's log: this handle's appends are refused (and must not be
	// acknowledged). The deposed caller serves reads from its last state
	// and reboots as a follower of the new epoch.
	ErrFenced = errors.New("persist: fenced by a newer leadership epoch")
)

// State is the durable state of one graph: the graph itself, the wire
// names of its nodes (dense, indexed by NodeID, "" for unnamed), and
// the DSL source of its registered rule set.
type State struct {
	Graph *gedlib.Graph
	Names []string
	Rules string
}

// Store is a directory of per-graph WALs and checkpoints. A Store
// itself holds no file handles and is safe for concurrent use; the
// GraphStores it opens are single-writer.
type Store struct {
	dir  string
	opts Options
	fs   FS
	reg  *obs.Registry // from Options.Observer; nil disables metrics
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir, opts: opts, fs: opts.FS, reg: opts.Observer.Registry()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Options returns the store's effective (defaulted) options.
func (s *Store) Options() Options { return s.opts }

// Graphs lists the store's graph names, sorted.
func (s *Store) Graphs() ([]string, error) {
	des, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list graphs: %w", err)
	}
	var out []string
	for _, de := range des {
		if de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a graph's directory and everything in it.
func (s *Store) Delete(name string) error {
	dir, err := s.graphDir(name)
	if err != nil {
		return err
	}
	return s.fs.RemoveAll(dir)
}

// graphDir validates the name (it becomes a path component) and returns
// the graph's directory.
func (s *Store) graphDir(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", fmt.Errorf("persist: invalid graph name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// File naming: the 16-hex-digit version in the name is the graph
// version the checkpoint captures / the segment starts at, so plain
// lexicographic directory order is version order.

func ckptName(v uint64) string { return fmt.Sprintf("ckpt-%016x.ged", v) }
func segName(v uint64) string  { return fmt.Sprintf("wal-%016x.log", v) }

func parseVersioned(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listVersions returns the versions of every file matching
// prefix-<16x>suffix in dir, sorted ascending. A missing dir lists
// empty.
func (s *Store) listVersions(dir, prefix, suffix string) ([]uint64, error) {
	des, err := s.fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	var out []uint64
	for _, de := range des {
		if v, ok := parseVersioned(de.Name(), prefix, suffix); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
