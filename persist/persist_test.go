package persist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gedlib"
)

// mutate drives nOps random ops against g, naming added nodes through
// names (dense by NodeID).
func mutate(g *gedlib.Graph, names *[]string, rng *rand.Rand, nOps int) {
	for i := 0; i < nOps; i++ {
		switch k := rng.Intn(10); {
		case k < 2 || g.NumNodes() == 0:
			id := g.AddNode(gedlib.Label([]string{"person", "city", "product"}[rng.Intn(3)]))
			for int(id) >= len(*names) {
				*names = append(*names, "")
			}
			if rng.Intn(3) > 0 {
				(*names)[id] = "n" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
			}
		case k < 6:
			src := gedlib.NodeID(rng.Intn(g.NumNodes()))
			dst := gedlib.NodeID(rng.Intn(g.NumNodes()))
			g.AddEdge(src, gedlib.Label([]string{"knows", "likes"}[rng.Intn(2)]), dst)
		default:
			id := gedlib.NodeID(rng.Intn(g.NumNodes()))
			if rng.Intn(2) == 0 {
				g.SetAttr(id, "age", gedlib.Int(rng.Intn(90)))
			} else {
				g.SetAttr(id, "type", gedlib.String([]string{"a", "b", "c"}[rng.Intn(3)]))
			}
		}
	}
}

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func assertStateEqual(t *testing.T, want, got State) {
	t.Helper()
	if got.Graph.String() != want.Graph.String() {
		t.Fatalf("graphs differ:\ngot:\n%s\nwant:\n%s", got.Graph.String(), want.Graph.String())
	}
	if got.Graph.Version() != want.Graph.Version() {
		t.Fatalf("version: got %d, want %d", got.Graph.Version(), want.Graph.Version())
	}
	if got.Rules != want.Rules {
		t.Fatalf("rules: got %q, want %q", got.Rules, want.Rules)
	}
	for i := 0; i < len(want.Names) || i < len(got.Names); i++ {
		var w, g string
		if i < len(want.Names) {
			w = want.Names[i]
		}
		if i < len(got.Names) {
			g = got.Names[i]
		}
		if w != g {
			t.Fatalf("name of n%d: got %q, want %q", i, g, w)
		}
	}
}

// TestWALRecordRoundTrip: encode/decode identity for delta and rules
// records.
func TestWALRecordRoundTrip(t *testing.T) {
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(11))
	v0 := g.Version()
	mutate(g, &names, rng, 80)
	d := g.DeltaSince(v0)
	dn := make([]string, len(d.Nodes))
	for i, n := range d.Nodes {
		if int(n.ID) < len(names) {
			dn[i] = names[n.ID]
		}
	}
	ts := time.Now().UnixNano()
	tr, err := decodeRecord(encodeDelta(ts, 0, d, dn))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delta == nil || tr.Rules != nil {
		t.Fatal("wrong record kind")
	}
	if tr.AppendedAt.UnixNano() != ts || tr.Version != d.ToVersion {
		t.Fatalf("metadata: %v %d", tr.AppendedAt, tr.Version)
	}
	if tr.Delta.FromVersion != d.FromVersion || tr.Delta.ToVersion != d.ToVersion ||
		len(tr.Delta.Nodes) != len(d.Nodes) || len(tr.Delta.Edges) != len(d.Edges) || len(tr.Delta.Attrs) != len(d.Attrs) {
		t.Fatalf("delta shape: %+v", tr.Delta)
	}
	// Replaying the decoded delta gives the same graph as the original.
	fresh := gedlib.NewGraph()
	if err := fresh.ApplyDelta(tr.Delta); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != g.String() {
		t.Fatal("decoded delta replays differently")
	}
	for i := range dn {
		if tr.Names[i] != dn[i] {
			t.Fatalf("name %d: got %q, want %q", i, tr.Names[i], dn[i])
		}
	}

	src := "key company(x) => x.name = x.name;"
	tr, err = decodeRecord(encodeRules(ts, 0, 42, src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rules == nil || *tr.Rules != src || tr.Version != 42 {
		t.Fatalf("rules record: %+v", tr)
	}
}

// TestScanFramesCorruptTail: the scanner keeps the valid prefix and
// flags torn headers, short payloads and CRC mismatches.
func TestScanFramesCorruptTail(t *testing.T) {
	a := frame([]byte("alpha"))
	b := frame([]byte("beta"))
	whole := append(append([]byte{}, a...), b...)

	count := func(b []byte) (n, valid int, corrupt bool) {
		valid, corrupt, err := scanFrames(b, func([]byte) error { n++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		return n, valid, corrupt
	}

	if n, valid, corrupt := count(whole); n != 2 || valid != len(whole) || corrupt {
		t.Fatalf("clean scan: n=%d valid=%d corrupt=%v", n, valid, corrupt)
	}
	// Torn header.
	if n, valid, corrupt := count(whole[:len(a)+3]); n != 1 || valid != len(a) || !corrupt {
		t.Fatalf("torn header: n=%d valid=%d corrupt=%v", n, valid, corrupt)
	}
	// Short payload.
	if n, valid, corrupt := count(whole[:len(whole)-2]); n != 1 || valid != len(a) || !corrupt {
		t.Fatalf("short payload: n=%d valid=%d corrupt=%v", n, valid, corrupt)
	}
	// Flipped payload byte -> CRC mismatch.
	bad := append([]byte{}, whole...)
	bad[len(a)+8] ^= 0xff
	if n, valid, corrupt := count(bad); n != 1 || valid != len(a) || !corrupt {
		t.Fatalf("crc mismatch: n=%d valid=%d corrupt=%v", n, valid, corrupt)
	}
	// Implausible length prefix.
	huge := append([]byte{}, a...)
	huge = append(huge, make([]byte, 8)...)
	binary.LittleEndian.PutUint32(huge[len(a):], 1<<31)
	if n, valid, corrupt := count(huge); n != 1 || valid != len(a) || !corrupt {
		t.Fatalf("huge length: n=%d valid=%d corrupt=%v", n, valid, corrupt)
	}
}

// TestCheckpointRoundTrip: write + load identity, including names and
// rules, via the mmap path.
func TestCheckpointRoundTrip(t *testing.T) {
	g := gedlib.NewGraph()
	var names []string
	mutate(g, &names, rand.New(rand.NewSource(5)), 300)
	st := State{Graph: g, Names: names, Rules: "ged r1 { person(x); } => x.age = 1;"}
	dir := t.TempDir()
	cs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cs.writeCheckpoint(dir, st, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if v != g.Version() {
		t.Fatalf("checkpoint version %d, want %d", v, g.Version())
	}
	got, gotV, gotE, err := cs.loadCheckpoint(filepath.Join(dir, ckptName(v)))
	if err != nil {
		t.Fatal(err)
	}
	if gotV != v {
		t.Fatalf("loaded version %d, want %d", gotV, v)
	}
	if gotE != 7 {
		t.Fatalf("loaded epoch %d, want 7", gotE)
	}
	assertStateEqual(t, st, got)
}

// TestCheckpointCorruption: flipped bytes are detected by the CRC, a
// truncated file by the bounds checks; neither panics.
func TestCheckpointCorruption(t *testing.T) {
	g := gedlib.NewGraph()
	var names []string
	mutate(g, &names, rand.New(rand.NewSource(6)), 100)
	dir := t.TempDir()
	cs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cs.writeCheckpoint(dir, State{Graph: g, Names: names}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName(v))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, corrupt := range [][]byte{
		data[:len(data)/2],                 // truncated
		flip(data, len(data)-3),            // payload bit rot
		flip(data, ckptHeaderBytes+2),      // section table rot
		[]byte("GEDCKPTX garbage follows"), // bad magic
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := cs.loadCheckpoint(path); err == nil {
			t.Fatalf("case %d: corrupted checkpoint loaded", i)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

// TestStoreRecoverRoundTrip: create, append batches of deltas, rules,
// periodic checkpoints; recovery reproduces the live state exactly at
// every step, and recovery replays only the tail, not the history.
func TestStoreRecoverRoundTrip(t *testing.T) {
	s := openStore(t, Options{CheckpointEvery: 150})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(7))
	mutate(g, &names, rng, 50)
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("kb", State{Graph: g, Names: names}); err != ErrExists {
		t.Fatalf("duplicate Create: %v", err)
	}

	rules := "r"
	if err := gs.AppendRules(g.Version(), rules); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		from := g.Version()
		mutate(g, &names, rng, 5+rng.Intn(40))
		d := g.DeltaSince(from)
		dn := make([]string, len(d.Nodes))
		for i, n := range d.Nodes {
			dn[i] = names[n.ID]
		}
		if err := gs.AppendDelta(d, dn); err != nil {
			t.Fatal(err)
		}
		if err := gs.Sync(); err != nil {
			t.Fatal(err)
		}
		if gs.CheckpointDue() {
			if err := gs.Checkpoint(State{Graph: g, Names: names, Rules: rules}); err != nil {
				t.Fatal(err)
			}
		}

		rec, err := s.Recover("kb")
		if err != nil {
			t.Fatal(err)
		}
		assertStateEqual(t, State{Graph: g, Names: names, Rules: rules}, rec.State)
		if rec.TruncatedTail {
			t.Fatal("clean log reported truncated")
		}
		if stats := gs.Stats(); rec.ReplayedOps != stats.OpsSinceCheckpoint {
			t.Fatalf("replayed %d ops, checkpoint lag is %d", rec.ReplayedOps, stats.OpsSinceCheckpoint)
		}
	}
	if err := gs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gs.AppendDelta(&gedlib.Delta{}, nil); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}

	// Compaction must be bounded: at most RetainCheckpoints checkpoints.
	dir, _ := s.graphDir("kb")
	ckpts, _ := s.listVersions(dir, "ckpt-", ".ged")
	if len(ckpts) > s.Options().RetainCheckpoints {
		t.Fatalf("%d checkpoints retained, want <= %d", len(ckpts), s.Options().RetainCheckpoints)
	}
}

// TestCrashRecoveryOracle is the crash-safety contract: simulate a
// kill-9 (the GraphStore is simply abandoned, never Closed) with a torn
// and CRC-corrupted tail, reopen, and require the recovered graph to
// equal the serial oracle built from the same surviving prefix — and
// OpenGraph to have truncated the garbage so appends continue cleanly.
func TestCrashRecoveryOracle(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff, CheckpointEvery: 1 << 30})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(9))
	mutate(g, &names, rng, 60)
	oracle := gedlib.NewGraph() // replays exactly what reaches the WAL
	if err := oracle.ApplyDelta(g.DeltaSince(0)); err != nil {
		t.Fatal(err)
	}
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	for burst := 0; burst < 8; burst++ {
		from := g.Version()
		mutate(g, &names, rng, 10+rng.Intn(20))
		d := g.DeltaSince(from)
		dn := make([]string, len(d.Nodes))
		for i, n := range d.Nodes {
			dn[i] = names[n.ID]
		}
		if err := gs.AppendDelta(d, dn); err != nil {
			t.Fatal(err)
		}
		if err := oracle.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close, and the tail gets a torn half-frame plus a
	// CRC-corrupted copy of a real record.
	dir, _ := s.graphDir("kb")
	segs, _ := s.listVersions(dir, "wal-", ".log")
	segPath := filepath.Join(dir, segName(segs[len(segs)-1]))
	garbage := frame(encodeRules(time.Now().UnixNano(), 0, g.Version(), "never lands"))
	garbage[9] ^= 0xff // corrupt the payload under an intact CRC header
	garbage = append(garbage, frame([]byte("torn"))[:5]...)
	seg, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Write(garbage); err != nil {
		t.Fatal(err)
	}
	_ = seg.Close()
	before, _ := os.Stat(segPath)

	gs2, rec, err := s.OpenGraph("kb")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TruncatedTail {
		t.Fatal("corrupted tail not reported")
	}
	if rec.State.Graph.String() != oracle.String() {
		t.Fatalf("recovered graph differs from oracle:\ngot:\n%s\nwant:\n%s", rec.State.Graph.String(), oracle.String())
	}
	if rec.State.Graph.Version() != oracle.Version() {
		t.Fatalf("recovered version %d, oracle %d", rec.State.Graph.Version(), oracle.Version())
	}
	after, _ := os.Stat(segPath)
	if after.Size() >= before.Size() {
		t.Fatalf("corrupt tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The reopened log keeps accepting and recovering appends.
	from := rec.State.Graph.Version()
	rec.State.Graph.SetAttr(0, "post", gedlib.Int(1))
	if err := gs2.AppendDelta(rec.State.Graph.DeltaSince(from), nil); err != nil {
		t.Fatal(err)
	}
	if err := gs2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rec2.State.Graph.Attr(0, "post"); !ok || !v.Equal(gedlib.Int(1)) {
		t.Fatal("post-repair append lost")
	}
	if rec2.TruncatedTail {
		t.Fatal("repaired log still reports truncation")
	}
}

// TestTailFollowsRotation: a tailer sees every delta exactly once, in
// order, across checkpoint rotations, and measures staleness from the
// record timestamps.
func TestTailFollowsRotation(t *testing.T) {
	// Generous retention: the leader runs far ahead of the tailer here,
	// and this test is about rotation-following, not compaction lag
	// (TestTailLagResync covers that).
	s := openStore(t, Options{Fsync: FsyncOff, CheckpointEvery: 40, RetainCheckpoints: 64})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(13))
	mutate(g, &names, rng, 30)
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}

	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	replica := rec.State.Graph
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := make(chan uint64, 256)
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- s.Tail(ctx, "kb", rec, time.Millisecond, func(tr TailRecord) error {
			if tr.Delta != nil {
				if time.Since(tr.AppendedAt) < 0 {
					return fmt.Errorf("record from the future")
				}
				if err := replica.ApplyDelta(tr.Delta); err != nil {
					return err
				}
				applied <- tr.Delta.ToVersion
			}
			return nil
		})
	}()

	for round := 0; round < 10; round++ {
		from := g.Version()
		mutate(g, &names, rng, 15)
		if err := gs.AppendDelta(g.DeltaSince(from), make([]string, 64)); err != nil {
			t.Fatal(err)
		}
		if gs.CheckpointDue() {
			if err := gs.Checkpoint(State{Graph: g, Names: names}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case v := <-applied:
			if v == g.Version() {
				cancel()
				if err := <-tailErr; err != context.Canceled {
					t.Fatalf("tail exit: %v", err)
				}
				if replica.String() != g.String() {
					t.Fatal("replica diverged from leader")
				}
				_ = gs.Close()
				return
			}
		case err := <-tailErr:
			t.Fatalf("tail died: %v", err)
		case <-deadline:
			t.Fatalf("follower never caught up: replica at %d, leader at %d", replica.Version(), g.Version())
		}
	}
}

// TestTailLagResync: a tailer that falls behind compaction gets
// ErrLagBehind, re-recovers, and lands on the leader's state — the
// follower resync protocol.
func TestTailLagResync(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncOff, CheckpointEvery: 20, RetainCheckpoints: 1})
	g := gedlib.NewGraph()
	var names []string
	rng := rand.New(rand.NewSource(17))
	mutate(g, &names, rng, 20)
	gs, err := s.Create("kb", State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	// Leader sprints: several checkpoint rotations with retention 1, so
	// the recovery point's segment is compacted away before the tailer
	// ever looks at it.
	for round := 0; round < 8; round++ {
		from := g.Version()
		mutate(g, &names, rng, 25)
		if err := gs.AppendDelta(g.DeltaSince(from), make([]string, 64)); err != nil {
			t.Fatal(err)
		}
		if err := gs.Checkpoint(State{Graph: g, Names: names}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = s.Tail(ctx, "kb", rec, time.Millisecond, func(TailRecord) error { return nil })
	if !errors.Is(err, ErrLagBehind) {
		t.Fatalf("lagged tail: got %v, want ErrLagBehind", err)
	}
	rec2, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec2.State.Graph.String() != g.String() {
		t.Fatal("re-recovered state diverges from leader")
	}
	_ = gs.Close()
}
