package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Recovery is the result of replaying a graph's durable state: the
// recovered State plus what the replay saw on the way. The recovery
// point (segment + offset + version) is kept internally so Store.Tail
// can resume exactly where recovery stopped.
type Recovery struct {
	State State
	// CheckpointVersion is the version of the checkpoint the replay
	// started from.
	CheckpointVersion uint64
	// ReplayedRecords / ReplayedOps count the WAL tail that was applied
	// on top of the checkpoint.
	ReplayedRecords int
	ReplayedOps     int
	// TruncatedTail reports that the log ended in a torn or corrupted
	// frame — expected after a crash mid-append; the valid prefix is
	// what was recovered, and OpenGraph truncates the garbage.
	TruncatedTail bool
	// Epoch is the graph's current leadership epoch: the newest epoch
	// observed across the EPOCHS file, the loaded checkpoint header and
	// replayed epoch-bump records. A handle opened by OpenGraph writes
	// under it; a rebooting maybe-deposed leader overrides it with
	// AssumeEpoch.
	Epoch uint64
	// FencedRecords counts replayed records that were skipped because a
	// later epoch's fence bound excluded them — writes a deposed leader
	// attempted after its successor drained the log, never acknowledged.
	FencedRecords int

	// tail position for Store.Tail.
	tailSeg string // absolute path of the segment the replay ended in
	tailOff int64  // byte offset of the first unconsumed frame
}

// tailFix records where OpenGraph must truncate a corrupt tail.
type tailFix struct {
	path  string
	valid int64
}

// Recover rebuilds a graph's state read-only: newest valid checkpoint,
// plus the replay of the WAL tail. It never modifies the directory —
// followers and diagnostics use it; leaders use OpenGraph, which also
// repairs the tail and reopens the log for appending.
func (s *Store) Recover(name string) (*Recovery, error) {
	rec, _, err := s.recover(name)
	return rec, err
}

// OpenGraph recovers a graph for writing: Recover, then truncate any
// corrupt tail (and remove unreachable later segments), then reopen the
// last segment for appending. The handle writes under the lineage's
// current epoch; a reboot that may have been deposed while down should
// follow with AssumeEpoch (see Config.AssumeEpoch in serve).
func (s *Store) OpenGraph(name string) (*GraphStore, *Recovery, error) {
	rec, fix, err := s.recover(name)
	if err != nil {
		return nil, nil, err
	}
	dir, _ := s.graphDir(name)
	gs, err := s.openRecovered(name, dir, rec, fix, rec.Epoch)
	if err != nil {
		return nil, nil, err
	}
	return gs, rec, nil
}

// openRecovered finishes opening a recovered graph for writing under
// the given epoch: truncate any corrupt tail (and remove unreachable
// later segments), then reopen the last segment for appending.
func (s *Store) openRecovered(name, dir string, rec *Recovery, fix *tailFix, epoch uint64) (*GraphStore, error) {
	if fix != nil {
		if err := s.fs.Truncate(fix.path, fix.valid); err != nil {
			return nil, fmt.Errorf("persist: truncate corrupt WAL tail: %w", err)
		}
		// Anything after a corrupt frame is unreachable history; a
		// later segment here means the corruption predates a rotation,
		// which only a partial manual copy produces. Drop them: the
		// replayed prefix is the durable truth.
		segs, _ := s.listVersions(dir, "wal-", ".log")
		fixStart, _ := parseVersioned(filepath.Base(fix.path), "wal-", ".log")
		for _, v := range segs {
			if v > fixStart {
				_ = s.fs.Remove(filepath.Join(dir, segName(v)))
			}
		}
	}
	segPath := rec.tailSeg
	if segPath == "" {
		segPath = filepath.Join(dir, segName(rec.State.Graph.Version()))
	}
	seg, err := s.fs.OpenFile(segPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: reopen WAL: %w", err)
	}
	segStart, _ := parseVersioned(filepath.Base(segPath), "wal-", ".log")
	gs := &GraphStore{
		store:       s,
		name:        name,
		dir:         dir,
		seg:         seg,
		segStart:    segStart,
		version:     rec.State.Graph.Version(),
		ckptVersion: rec.CheckpointVersion,
		opsSince:    rec.ReplayedOps,
		segBytes:    rec.tailOff,
		epoch:       epoch,
	}
	gs.initMetrics()
	return gs, nil
}

// recover is the shared replay. It returns the recovery plus, when the
// tail was corrupt, where a writer must truncate.
func (s *Store) recover(name string) (*Recovery, *tailFix, error) {
	replayStart := time.Now()
	defer func() {
		s.reg.Histogram("ged_recovery_replay_seconds",
			"checkpoint load + WAL tail replay duration", "graph", name).Observe(time.Since(replayStart))
	}()
	dir, err := s.graphDir(name)
	if err != nil {
		return nil, nil, err
	}
	ckpts, err := s.listVersions(dir, "ckpt-", ".ged")
	if err != nil {
		return nil, nil, err
	}
	if len(ckpts) == 0 {
		return nil, nil, fmt.Errorf("persist: graph %q has no checkpoint", name)
	}

	bounds, err := s.readEpochs(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: graph %q: %w", name, err)
	}

	// Newest valid checkpoint wins; a corrupt one (crash mid-write is
	// excluded by the rename, but disks rot) falls back to its
	// predecessor. So does a fenced one: a checkpoint a deposed leader
	// raced out past its successor's fence bound captures state that was
	// never acknowledged — it must not become the recovery root.
	var st State
	var ckptVer, ckptEpoch uint64
	loaded := false
	var lastErr error
	for i := len(ckpts) - 1; i >= 0; i-- {
		st, ckptVer, ckptEpoch, lastErr = s.loadCheckpoint(filepath.Join(dir, ckptName(ckpts[i])))
		if lastErr == nil && staleBeyond(bounds, ckptEpoch, ckptVer) {
			lastErr = fmt.Errorf("persist: %s: checkpoint fenced off by epoch %d",
				ckptName(ckpts[i]), boundAfter(bounds, ckptEpoch).Epoch)
		}
		if lastErr == nil {
			loaded = true
			break
		}
	}
	if !loaded {
		return nil, nil, fmt.Errorf("persist: graph %q: no loadable checkpoint: %w", name, lastErr)
	}

	rec := &Recovery{State: st, CheckpointVersion: ckptVer, Epoch: ckptEpoch}
	if ce := currentEpoch(bounds); ce > rec.Epoch {
		rec.Epoch = ce
	}

	segs, err := s.listVersions(dir, "wal-", ".log")
	if err != nil {
		return nil, nil, err
	}
	// Replay starts at the last segment that begins at or before the
	// checkpoint; earlier segments are fully covered by it.
	start := -1
	for i, v := range segs {
		if v <= ckptVer {
			start = i
		}
	}
	if start == -1 {
		if len(segs) == 0 {
			return rec, nil, nil
		}
		return nil, nil, fmt.Errorf("persist: graph %q: no WAL segment covers checkpoint version %d", name, ckptVer)
	}

	cur := st.Graph.Version()
	for i := start; i < len(segs); i++ {
		path := filepath.Join(dir, segName(segs[i]))
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: read WAL: %w", err)
		}
		valid, corrupt, err := scanFrames(data, func(payload []byte) error {
			return s.applyRecord(rec, bounds, &cur, payload)
		})
		if err != nil {
			// A record that frames correctly but does not decode or
			// apply is treated like tail corruption: keep the valid
			// prefix, truncate the rest. (A gap mid-log has no better
			// answer — the prefix is the last consistent state.)
			corrupt = true
		}
		rec.tailSeg, rec.tailOff = path, int64(valid)
		if corrupt {
			rec.TruncatedTail = true
			return rec, &tailFix{path: path, valid: int64(valid)}, nil
		}
	}
	return rec, nil, nil
}

// applyRecord is the shared replay step for recovery and Promote's
// drain: decode one WAL payload and fold it into rec. cur is the
// version cursor the chain check runs against. Records of a deposed
// epoch beyond a later epoch's fence bound are skipped — they were
// never acknowledged (see epoch.go) — before any version check, since
// a fenced-off record does not extend the adopted lineage.
func (s *Store) applyRecord(rec *Recovery, bounds []EpochBound, cur *uint64, payload []byte) error {
	tr, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	if !tr.EpochBump && staleBeyond(bounds, tr.Epoch, tr.Version) {
		rec.FencedRecords++
		return nil
	}
	switch {
	case tr.EpochBump:
		if tr.Epoch > rec.Epoch {
			rec.Epoch = tr.Epoch
		}
		rec.ReplayedRecords++
	case tr.Delta != nil:
		d := tr.Delta
		if d.ToVersion <= *cur {
			return nil // before the checkpoint; already reflected
		}
		if d.FromVersion != *cur {
			return fmt.Errorf("persist: WAL gap: record from version %d at version %d", d.FromVersion, *cur)
		}
		if err := rec.State.Graph.ApplyDelta(d); err != nil {
			return err
		}
		for j, n := range d.Nodes {
			if tr.Names[j] == "" {
				continue
			}
			for int(n.ID) >= len(rec.State.Names) {
				rec.State.Names = append(rec.State.Names, "")
			}
			rec.State.Names[n.ID] = tr.Names[j]
		}
		*cur = d.ToVersion
		rec.ReplayedRecords++
		rec.ReplayedOps += d.Size()
	case tr.Rules != nil:
		if tr.Version >= rec.CheckpointVersion {
			rec.State.Rules = *tr.Rules
		}
		rec.ReplayedRecords++
	}
	return nil
}
