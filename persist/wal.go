package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"gedlib"
)

// WAL record kinds (first payload byte).
const (
	recDelta byte = 1 // one coalesced batch's Delta + wire names of added nodes
	recRules byte = 2 // a rules registration: the DSL source
	recEpoch byte = 3 // a leadership transition: the promoting epoch + its fence bound
)

// maxRecordBytes bounds a single record, protecting the reader from a
// corrupted length prefix allocating the universe.
const maxRecordBytes = 1 << 30

// TailRecord is one decoded WAL record, as delivered by Store.Tail and
// consumed by recovery. Exactly one of Delta, Rules and EpochBump is
// set.
type TailRecord struct {
	// Version is the graph version after the record applies (for an
	// epoch bump: the fence bound — the version the new leader drained
	// the log to).
	Version uint64
	// Epoch is the leadership epoch of the leader that appended the
	// record (see epoch.go). Records of a deposed epoch with versions
	// beyond a later epoch's fence bound were never acknowledged and
	// are skipped by recovery and tailing.
	Epoch uint64
	// AppendedAt is the leader's wall clock when the record was
	// appended; follower staleness is time.Since of it.
	AppendedAt time.Time
	// Delta carries a batch's graph changes; Names are the wire names
	// of Delta.Nodes, parallel to it ("" = unnamed).
	Delta *gedlib.Delta
	Names []string
	// Rules carries a rules registration's DSL source.
	Rules *string
	// EpochBump marks a leadership transition: Epoch took over with its
	// fence bound at Version.
	EpochBump bool
}

// frame wraps a payload in the on-disk framing: u32 length, u32 IEEE
// CRC32 of the payload, payload (little endian).
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// scanFrames walks the framed records in b, calling fn with each valid
// payload. It returns how many bytes of b form whole valid frames and
// whether the walk stopped early on a torn or corrupted frame (partial
// header, short payload, or CRC mismatch). fn errors abort the scan.
func scanFrames(b []byte, fn func(payload []byte) error) (valid int, corrupt bool, err error) {
	off := 0
	for {
		if len(b)-off < 8 {
			return off, len(b)-off > 0, nil
		}
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n > maxRecordBytes || len(b)-off-8 < int(n) {
			return off, true, nil
		}
		payload := b[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, true, nil
		}
		if err := fn(payload); err != nil {
			return off, false, err
		}
		off += 8 + int(n)
	}
}

// ---- payload encoding ----
//
// Payloads are varint+string encoded: uvarints for counts and ids,
// length-prefixed bytes for strings, fixed 8-byte little-endian for
// float bits (varint-encoding random mantissas would inflate them).

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v gedlib.Value) []byte {
	b = append(b, byte(v.Kind()))
	if v.IsNumber() {
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v.Num()))
		return append(b, fb[:]...)
	}
	return appendString(b, v.Str())
}

// encodeDelta serializes a delta record: kind, append time, leadership
// epoch, version range, then the node/edge/attr rows. names is
// parallel to d.Nodes.
func encodeDelta(ts int64, epoch uint64, d *gedlib.Delta, names []string) []byte {
	b := make([]byte, 0, 64+16*d.Size())
	b = append(b, recDelta)
	b = appendVarint(b, ts)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, d.FromVersion)
	b = appendUvarint(b, d.ToVersion)
	b = appendUvarint(b, uint64(len(d.Nodes)))
	if len(d.Nodes) > 0 {
		b = appendUvarint(b, uint64(d.Nodes[0].ID)) // ids are contiguous from here
	}
	for i, n := range d.Nodes {
		b = appendString(b, string(n.Label))
		name := ""
		if i < len(names) {
			name = names[i]
		}
		b = appendString(b, name)
	}
	b = appendUvarint(b, uint64(len(d.Edges)))
	for _, e := range d.Edges {
		b = appendUvarint(b, uint64(e.Src))
		b = appendUvarint(b, uint64(e.Dst))
		b = appendString(b, string(e.Label))
	}
	b = appendUvarint(b, uint64(len(d.Attrs)))
	for _, w := range d.Attrs {
		b = appendUvarint(b, uint64(w.Node))
		b = appendString(b, string(w.Attr))
		b = appendValue(b, w.Value)
	}
	return b
}

// encodeRules serializes a rules record: kind, append time, leadership
// epoch, the graph version the rules were registered at, the DSL
// source.
func encodeRules(ts int64, epoch uint64, version uint64, src string) []byte {
	b := make([]byte, 0, 24+len(src))
	b = append(b, recRules)
	b = appendVarint(b, ts)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, version)
	b = appendString(b, src)
	return b
}

// encodeEpochBump serializes a leadership-transition record: kind,
// append time, the new epoch, and its fence bound (the version the new
// leader drained the log to before taking over).
func encodeEpochBump(ts int64, epoch uint64, version uint64) []byte {
	b := make([]byte, 0, 24)
	b = append(b, recEpoch)
	b = appendVarint(b, ts)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, version)
	return b
}

// walReader is a bounds-checked cursor over a record payload.
type walReader struct {
	b   []byte
	off int
	err error
}

func (r *walReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("persist: truncated %s in WAL record", what)
	}
}

func (r *walReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *walReader) u64() uint64 {
	if r.err != nil || len(r.b)-r.off < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *walReader) value() gedlib.Value {
	switch k := r.byte(); k {
	case 0: // string
		return gedlib.String(r.str())
	case 1: // number
		return gedlib.Number(math.Float64frombits(r.u64()))
	default:
		r.fail("value kind")
		return gedlib.Value{}
	}
}

// decodeRecord parses one payload into a TailRecord.
func decodeRecord(payload []byte) (TailRecord, error) {
	r := &walReader{b: payload}
	kind := r.byte()
	ts := r.varint()
	epoch := r.uvarint()
	var tr TailRecord
	tr.AppendedAt = time.Unix(0, ts)
	tr.Epoch = epoch
	switch kind {
	case recDelta:
		d := &gedlib.Delta{}
		d.FromVersion = r.uvarint()
		d.ToVersion = r.uvarint()
		nNodes := r.uvarint()
		if nNodes > uint64(len(payload)) {
			return tr, fmt.Errorf("persist: implausible node count %d", nNodes)
		}
		var first uint64
		if nNodes > 0 {
			first = r.uvarint()
		}
		names := make([]string, 0, nNodes)
		for i := uint64(0); i < nNodes && r.err == nil; i++ {
			label := r.str()
			name := r.str()
			d.Nodes = append(d.Nodes, gedlib.NodeAdd{ID: gedlib.NodeID(first + i), Label: gedlib.Label(label)})
			names = append(names, name)
		}
		nEdges := r.uvarint()
		if nEdges > uint64(len(payload)) {
			return tr, fmt.Errorf("persist: implausible edge count %d", nEdges)
		}
		for i := uint64(0); i < nEdges && r.err == nil; i++ {
			src := r.uvarint()
			dst := r.uvarint()
			label := r.str()
			d.Edges = append(d.Edges, gedlib.GraphEdge{Src: gedlib.NodeID(src), Label: gedlib.Label(label), Dst: gedlib.NodeID(dst)})
		}
		nAttrs := r.uvarint()
		if nAttrs > uint64(len(payload)) {
			return tr, fmt.Errorf("persist: implausible attr count %d", nAttrs)
		}
		for i := uint64(0); i < nAttrs && r.err == nil; i++ {
			node := r.uvarint()
			attr := r.str()
			val := r.value()
			d.Attrs = append(d.Attrs, gedlib.AttrWrite{Node: gedlib.NodeID(node), Attr: gedlib.Attr(attr), Value: val})
		}
		if r.err != nil {
			return tr, r.err
		}
		tr.Delta, tr.Names, tr.Version = d, names, d.ToVersion
		return tr, nil
	case recRules:
		version := r.uvarint()
		src := r.str()
		if r.err != nil {
			return tr, r.err
		}
		tr.Rules, tr.Version = &src, version
		return tr, nil
	case recEpoch:
		version := r.uvarint()
		if r.err != nil {
			return tr, r.err
		}
		tr.EpochBump, tr.Version = true, version
		return tr, nil
	default:
		return tr, fmt.Errorf("persist: unknown WAL record kind %d", kind)
	}
}
