package serve

import (
	"net/http"

	"gedlib/internal/obs"
)

// admission is the server's load shedder: a semaphore of concurrently
// admitted requests. A request that cannot be admitted immediately is
// rejected with 503 rather than queued — under overload the server
// answers "not now" fast instead of letting latency collapse for
// everyone (the write path has its own, separate backpressure in the
// batcher's bounded queue).
type admission struct {
	sem      chan struct{}
	admitted *obs.Counter
	rejected *obs.Counter
}

func newAdmission(maxInFlight int, reg *obs.Registry) *admission {
	a := &admission{
		sem: make(chan struct{}, maxInFlight),
		admitted: reg.Counter("ged_serve_requests_admitted_total",
			"HTTP requests admitted past the load shedder"),
		rejected: reg.Counter("ged_serve_requests_rejected_total",
			"HTTP requests rejected by the load shedder (503)"),
	}
	reg.GaugeFunc("ged_serve_inflight_requests",
		"currently admitted HTTP requests",
		func() float64 { return float64(len(a.sem)) })
	return a
}

// inFlight reports the currently admitted request count.
func (a *admission) inFlight() int { return len(a.sem) }

// wrap gates h behind the semaphore.
func (a *admission) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.sem <- struct{}{}:
			defer func() { <-a.sem }()
			a.admitted.Inc()
			h.ServeHTTP(w, r)
		default:
			a.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server saturated: max in-flight requests reached")
		}
	})
}
