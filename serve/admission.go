package serve

import (
	"net/http"
	"sync/atomic"
)

// admission is the server's load shedder: a semaphore of concurrently
// admitted requests. A request that cannot be admitted immediately is
// rejected with 503 rather than queued — under overload the server
// answers "not now" fast instead of letting latency collapse for
// everyone (the write path has its own, separate backpressure in the
// batcher's bounded queue).
type admission struct {
	sem      chan struct{}
	admitted atomic.Uint64
	rejected atomic.Uint64
}

func newAdmission(maxInFlight int) *admission {
	return &admission{sem: make(chan struct{}, maxInFlight)}
}

// inFlight reports the currently admitted request count.
func (a *admission) inFlight() int { return len(a.sem) }

// wrap gates h behind the semaphore.
func (a *admission) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.sem <- struct{}{}:
			defer func() { <-a.sem }()
			a.admitted.Add(1)
			h.ServeHTTP(w, r)
		default:
			a.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server saturated: max in-flight requests reached")
		}
	})
}
