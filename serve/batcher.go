package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gedlib/internal/obs"
)

// batcher is the per-graph write coalescer: mutation requests enqueue
// onto a bounded queue, and a single flusher goroutine drains it in
// merged batches — when FlushOps operations are pending, when MaxDelay
// has elapsed since the flusher saw work, or at close. Each flush costs
// one graph lock acquisition and one Engine.Apply regardless of how
// many requests it merged, which is what keeps a write-heavy burst from
// paying the maintenance pipeline per request. While a flush is
// running, newly arriving requests pile up and form the next batch —
// classic group commit, so coalescing deepens exactly when the system
// is busiest.
type batcher struct {
	ent      *GraphEntry
	flushOps int
	maxDelay time.Duration
	maxQueue int

	mu        sync.Mutex
	queue     []*writeReq
	queuedOps int
	closed    bool

	// wake carries "the queue became interesting" edges to the flusher;
	// buffered so enqueuers never block on it.
	wake chan struct{}
	done chan struct{}

	// Flush counters live in the catalog's metrics registry, per-graph
	// labeled — one source of truth for both /statsz and /metricsz.
	// maxBatchOps is a running maximum, which no counter models.
	flushes     *obs.Counter
	flushedOps  *obs.Counter
	flushedReqs *obs.Counter
	rejected    *obs.Counter
	maxBatchOps atomic.Uint64
}

// writeReq is one enqueued mutation request and its completion slot.
// at is its enqueue time — the flush that carries it reports the
// oldest request's wait as the queue_wait pipeline stage.
type writeReq struct {
	ops  []Op
	at   time.Time
	res  WriteResult
	done chan WriteResult // buffered(1); the flusher completes it
}

func newBatcher(ent *GraphEntry, cfg Config) *batcher {
	reg := ent.cat.reg
	return &batcher{
		ent:      ent,
		flushOps: cfg.FlushOps,
		maxDelay: cfg.MaxDelay,
		maxQueue: cfg.MaxQueueOps,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		flushes: reg.Counter("ged_serve_flushes_total",
			"write batches flushed", "graph", ent.name),
		flushedOps: reg.Counter("ged_serve_flushed_ops_total",
			"operations carried by flushed batches", "graph", ent.name),
		flushedReqs: reg.Counter("ged_serve_flushed_reqs_total",
			"requests coalesced into flushed batches", "graph", ent.name),
		rejected: reg.Counter("ged_serve_rejected_writes_total",
			"writes rejected by queue backpressure", "graph", ent.name),
	}
}

// enqueue adds ops to the queue and waits for the flush containing
// them. Backpressure is immediate: a queue past MaxQueueOps rejects
// with ErrQueueFull rather than buffering. A ctx expiry abandons only
// the wait — the ops are already queued and will still apply.
func (b *batcher) enqueue(ctx context.Context, ops []Op) (WriteResult, error) {
	if len(ops) == 0 {
		// The flusher gates on pending *ops*, so an op-less request
		// would sit in the queue until unrelated traffic flushed it;
		// reject it instead of blocking the caller indefinitely.
		return WriteResult{}, errors.New("serve: empty write request")
	}
	if len(ops) > b.maxQueue {
		// Larger than the queue itself: permanent, not backpressure.
		return WriteResult{}, ErrTooManyOps
	}
	req := &writeReq{ops: ops, at: time.Now(), done: make(chan WriteResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return WriteResult{}, ErrClosed
	}
	if b.queuedOps+len(ops) > b.maxQueue {
		b.mu.Unlock()
		b.rejected.Inc()
		return WriteResult{}, ErrQueueFull
	}
	b.queue = append(b.queue, req)
	b.queuedOps += len(ops)
	b.mu.Unlock()
	b.signal()

	select {
	case res := <-req.done:
		return res, res.Err
	case <-ctx.Done():
		return WriteResult{}, ctx.Err()
	}
}

func (b *batcher) signal() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// queueDepth reports the currently pending op count.
func (b *batcher) queueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queuedOps
}

// close stops the flusher after draining every pending request.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.signal()
	<-b.done
}

// take removes and returns the whole pending queue.
func (b *batcher) take() []*writeReq {
	b.mu.Lock()
	reqs := b.queue
	b.queue = nil
	b.queuedOps = 0
	b.mu.Unlock()
	return reqs
}

// run is the flusher loop; Catalog.Create starts it.
func (b *batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		pending, closed := b.queuedOps, b.closed
		b.mu.Unlock()

		if pending == 0 {
			if closed {
				return
			}
			<-b.wake
			continue
		}

		// A batch is open. Hold it for up to maxDelay to let concurrent
		// writers coalesce, but flush immediately on the size trigger
		// (or when shutting down).
		if pending < b.flushOps && !closed {
			timer := time.NewTimer(b.maxDelay)
		window:
			for {
				select {
				case <-b.wake:
					b.mu.Lock()
					full := b.queuedOps >= b.flushOps || b.closed
					b.mu.Unlock()
					if full {
						break window
					}
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}

		reqs := b.take()
		if len(reqs) == 0 {
			continue
		}
		ops := 0
		for _, r := range reqs {
			ops += len(r.ops)
		}
		b.ent.flushBatch(reqs)
		b.flushes.Inc()
		b.flushedReqs.Add(uint64(len(reqs)))
		b.flushedOps.Add(uint64(ops))
		for {
			cur := b.maxBatchOps.Load()
			if uint64(ops) <= cur || b.maxBatchOps.CompareAndSwap(cur, uint64(ops)) {
				break
			}
		}
	}
}

// stats snapshots the batcher counters into an EntryStats skeleton.
func (b *batcher) stats() EntryStats {
	s := EntryStats{
		QueueOps:       b.queueDepth(),
		Flushes:        b.flushes.Value(),
		FlushedOps:     b.flushedOps.Value(),
		FlushedReqs:    b.flushedReqs.Value(),
		RejectedWrites: b.rejected.Value(),
		MaxBatchOps:    b.maxBatchOps.Load(),
	}
	if s.Flushes > 0 {
		s.AvgBatchOps = float64(s.FlushedOps) / float64(s.Flushes)
		s.AvgBatchReqs = float64(s.FlushedReqs) / float64(s.Flushes)
	}
	return s
}
