package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

func newTestEntry(t *testing.T, cfg Config) (*Catalog, *GraphEntry) {
	t.Helper()
	cat, err := NewCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cat.Close)
	ent, err := cat.Create("g", []byte(`{
		"nodes": [
			{"id": "game", "label": "product", "attrs": {"type": "video game", "name": "GB"}},
			{"id": "dev", "label": "person", "attrs": {"type": "artist"}}
		],
		"edges": [{"src": "dev", "label": "create", "dst": "game"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	src := `ged phi1 on (x:person)-[create]->(y:product) {
		when y.type = "video game"
		then x.type = "programmer"
	}`
	if _, err := ent.RegisterRules(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	return cat, ent
}

// TestBatcherCoalesces: concurrent writers land in fewer flushes than
// requests, and every writer observes its own write in the view it is
// told about.
func TestBatcherCoalesces(t *testing.T) {
	// A long deadline forces coalescing: the first write opens a 50ms
	// window and the rest of the burst joins it.
	_, ent := newTestEntry(t, Config{MaxDelay: 50 * time.Millisecond, FlushOps: 1 << 20})
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ent.Mutate(context.Background(), []Op{
				{Op: "set_attr", ID: "dev", Attr: "type", Value: "programmer"},
			})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Applied != 1 {
				t.Errorf("applied %d ops, want 1", res.Applied)
			}
		}()
	}
	wg.Wait()
	s := ent.Stats()
	if s.Flushes == 0 || s.FlushedOps != writers {
		t.Fatalf("flushed %d ops in %d flushes, want %d ops", s.FlushedOps, s.Flushes, writers)
	}
	if s.Flushes >= writers {
		t.Fatalf("no coalescing: %d flushes for %d writes", s.Flushes, writers)
	}
	if s.AvgBatchOps <= 1 {
		t.Fatalf("avg batch %.2f ops, want > 1", s.AvgBatchOps)
	}
	// The writes repaired the planted violation; the published view
	// must reflect the flushed state.
	if view := ent.CurrentView(); len(view.Violations) != 0 {
		t.Fatalf("view still reports %d violations after repair", len(view.Violations))
	}
}

// TestBatcherDeadlineFlush: a lone write flushes by deadline, not never.
func TestBatcherDeadlineFlush(t *testing.T) {
	_, ent := newTestEntry(t, Config{MaxDelay: 5 * time.Millisecond, FlushOps: 1 << 20})
	start := time.Now()
	if _, err := ent.Mutate(context.Background(), []Op{
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "Ada"},
	}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline flush took %v", d)
	}
}

// TestBatcherSizeTriggerBeatsDeadline: hitting FlushOps flushes
// immediately, well before a long deadline.
func TestBatcherSizeTriggerBeatsDeadline(t *testing.T) {
	_, ent := newTestEntry(t, Config{MaxDelay: 10 * time.Second, FlushOps: 2})
	start := time.Now()
	if _, err := ent.Mutate(context.Background(), []Op{
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "Grace"},
		{Op: "set_attr", ID: "game", Attr: "name", Value: "GB2"},
	}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("size-triggered flush waited for the deadline: %v", d)
	}
}

// TestBatcherBackpressure: a full queue rejects with ErrQueueFull
// instead of buffering unboundedly.
func TestBatcherBackpressure(t *testing.T) {
	_, ent := newTestEntry(t, Config{MaxQueueOps: 2, MaxDelay: time.Hour, FlushOps: 1 << 20})
	// Park two ops in the queue without waiting for their flush.
	bg, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ent.Mutate(bg, []Op{
			{Op: "set_attr", ID: "dev", Attr: "name", Value: "a"},
			{Op: "set_attr", ID: "dev", Attr: "name", Value: "b"},
		})
		done <- err
	}()
	// Wait until they are queued.
	for i := 0; i < 1000 && ent.b.Load().queueDepth() < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	if ent.b.Load().queueDepth() != 2 {
		t.Fatalf("queue depth %d, want 2", ent.b.Load().queueDepth())
	}
	if _, err := ent.Mutate(context.Background(), []Op{
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "c"},
	}); err != ErrQueueFull {
		t.Fatalf("overfull enqueue returned %v, want ErrQueueFull", err)
	}
	if s := ent.Stats(); s.RejectedWrites != 1 {
		t.Fatalf("rejected_writes %d, want 1", s.RejectedWrites)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("abandoned wait returned %v, want context.Canceled", err)
	}
}

// TestBatcherOversizedRequest: a single request larger than the whole
// queue bound is rejected as permanent (ErrTooManyOps), not as
// retryable backpressure.
func TestBatcherOversizedRequest(t *testing.T) {
	_, ent := newTestEntry(t, Config{MaxQueueOps: 2, MaxDelay: time.Millisecond})
	ops := []Op{
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "a"},
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "b"},
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "c"},
	}
	if _, err := ent.Mutate(context.Background(), ops); err != ErrTooManyOps {
		t.Fatalf("oversized request returned %v, want ErrTooManyOps", err)
	}
}

// TestBatcherCloseDrains: Delete flushes pending writes before the
// batcher stops, and later writes fail with ErrClosed.
func TestBatcherCloseDrains(t *testing.T) {
	cat, ent := newTestEntry(t, Config{MaxDelay: time.Hour, FlushOps: 1 << 20})
	done := make(chan WriteResult, 1)
	go func() {
		res, _ := ent.Mutate(context.Background(), []Op{
			{Op: "set_attr", ID: "dev", Attr: "type", Value: "programmer"},
		})
		done <- res
	}()
	for i := 0; i < 1000 && ent.b.Load().queueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := cat.Delete("g"); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.Applied != 1 || res.Err != nil {
		t.Fatalf("pending write not drained at close: %+v", res)
	}
	if _, err := ent.Mutate(context.Background(), []Op{
		{Op: "set_attr", ID: "dev", Attr: "name", Value: "late"},
	}); err != ErrClosed {
		t.Fatalf("write after close returned %v, want ErrClosed", err)
	}
}

// TestBatcherCloseDrainsToWAL pins the shutdown ordering: close drains
// the batcher BEFORE closing the entry's per-graph resources, so a
// write parked in the queue at shutdown still reaches the graph, the
// WAL, and the final checkpoint — a restore from the same directory
// must see it. (If close released the GraphStore first, the final
// flush would fail or be lost.)
func TestBatcherCloseDrainsToWAL(t *testing.T) {
	dir := t.TempDir()
	cat, ent := newTestEntry(t, Config{MaxDelay: time.Hour, FlushOps: 1 << 20, DataDir: dir})
	// Park the repairing write: the hour-long delay guarantees it is
	// still queued, unflushed, when Close runs.
	done := make(chan WriteResult, 1)
	go func() {
		res, _ := ent.Mutate(context.Background(), []Op{
			{Op: "set_attr", ID: "dev", Attr: "type", Value: "programmer"},
		})
		done <- res
	}()
	for i := 0; i < 1000 && ent.b.Load().queueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if ent.b.Load().queueDepth() == 0 {
		t.Fatal("write never queued")
	}
	cat.Close()
	res := <-done
	if res.Applied != 1 || res.Err != nil {
		t.Fatalf("parked write not drained at close: %+v", res)
	}

	// Reboot from the same directory: the drained write must have made
	// it to disk (it repaired the only planted violation).
	cat2, err := NewCatalog(Config{MaxDelay: time.Millisecond, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cat2.Close)
	if _, err := cat2.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ent2, err := cat2.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	view := ent2.CurrentView()
	if len(view.Violations) != 0 {
		t.Fatalf("restored graph still has %d violations: the close-drained write was lost", len(view.Violations))
	}
	if v := ent.CurrentView(); view.Version != v.Version {
		t.Fatalf("restored version %d, pre-close version %d", view.Version, v.Version)
	}
}

// TestOpErrors: invalid ops are reported per-op while the rest of the
// batch applies.
func TestOpErrors(t *testing.T) {
	_, ent := newTestEntry(t, Config{MaxDelay: time.Millisecond})
	res, err := ent.Mutate(context.Background(), []Op{
		{Op: "set_attr", ID: "nobody", Attr: "type", Value: "x"},
		{Op: "add_node", ID: "qa", Label: "person", Attrs: map[string]any{"type": "tester"}},
		{Op: "add_edge", Src: "qa", Label: "create", Dst: "game"},
		{Op: "frobnicate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || len(res.OpErrors) != 2 {
		t.Fatalf("applied=%d errors=%v, want 2 applied and 2 errors", res.Applied, res.OpErrors)
	}
	view := ent.CurrentView()
	id, ok := view.Names.Resolve("qa")
	if !ok {
		t.Fatal("added node qa not resolvable in the published view")
	}
	if view.Names.NameOf(id) != "qa" {
		t.Fatalf("round-trip name %q, want qa", view.Names.NameOf(id))
	}
	// The new non-programmer creator of a video game is a violation the
	// maintained set must have picked up.
	found := false
	for _, v := range view.Violations {
		for _, nid := range v.Match {
			if nid == id {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("maintained set missed the violation added by the batch: %d violations", len(view.Violations))
	}
}
