package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gedlib"
	"gedlib/internal/obs"
	"gedlib/persist"
)

// Catalog owns the tenant graphs of a serving process: each entry is a
// mutable graph, its registered rule set, its coalescing write batcher,
// and the lineage of immutable views published to readers. All methods
// are safe for concurrent use.
type Catalog struct {
	cfg Config
	eng *gedlib.Engine

	// reg is the catalog-lifetime metrics registry (always non-nil);
	// obs is the pipeline observer sharing it, nil when
	// Config.DisableObserver was set. See obs.go.
	reg *obs.Registry
	obs *gedlib.Observer

	// store is the durability layer (nil when Config.DataDir is empty).
	// follower marks a catalog tailing another process's store: entries
	// are read-only replicas and Create/Delete/writes are rejected.
	// roleMu serializes the role transitions (Promote, Demote, Close)
	// against each other; steady-state paths read the atomics lock-free.
	store        *persist.Store
	follower     atomic.Bool
	roleMu       sync.Mutex
	followCtx    context.Context
	followCancel context.CancelFunc
	followWG     sync.WaitGroup

	// Promotion metrics: count and wall-time (the measured RTO) of
	// follower-to-leader transitions.
	mPromotions *obs.Counter
	hPromotion  *obs.Histogram

	mu      sync.RWMutex
	entries map[string]*GraphEntry
	// creating reserves names while their entry is still being loaded
	// and seeded, so a racing duplicate Create fails fast instead of
	// burning a full validation (and an engine cache slot) first.
	creating map[string]struct{}
}

// NewCatalog returns an empty catalog configured by cfg. With a
// DataDir it opens (creating if needed) the persist store under it;
// call Restore to re-adopt the graphs already there, or Follow to tail
// them read-only.
func NewCatalog(cfg Config) (*Catalog, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	var observer *gedlib.Observer
	if !cfg.DisableObserver {
		observer = obs.NewWithRegistry(reg, cfg.OnSlowOp)
		observer.SetSlowOp(cfg.SlowOp)
	}
	c := &Catalog{
		cfg:      cfg,
		eng:      cfg.engine(observer),
		reg:      reg,
		obs:      observer,
		entries:  make(map[string]*GraphEntry),
		creating: make(map[string]struct{}),
	}
	c.mPromotions = reg.Counter("ged_promotions_total",
		"follower-to-leader promotions completed")
	c.hPromotion = reg.Histogram("ged_promotion_seconds",
		"wall time of follower-to-leader promotions (the RTO paid)")
	if cfg.DataDir != "" {
		mode, err := persist.ParseFsyncMode(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		c.store, err = persist.Open(cfg.DataDir, persist.Options{
			Fsync:             mode,
			CheckpointEvery:   cfg.CheckpointEvery,
			RetainCheckpoints: cfg.RetainCheckpoints,
			FS:                cfg.FS,
			Observer:          observer,
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// DataDir reports the catalog's durable directory ("" when in-memory).
func (c *Catalog) DataDir() string {
	if c.store == nil {
		return ""
	}
	return c.store.Dir()
}

// IsFollower reports whether the catalog is a read-only replica.
func (c *Catalog) IsFollower() bool { return c.follower.Load() }

// Role reports the catalog's current role: "follower" while tailing
// another process's store, "leader" otherwise.
func (c *Catalog) Role() string {
	if c.follower.Load() {
		return "follower"
	}
	return "leader"
}

// Engine exposes the catalog's shared engine (chase requests and tests
// use it directly).
func (c *Catalog) Engine() *gedlib.Engine { return c.eng }

// View is one published read-path state of a graph: everything a
// reader needs, immutable, handed over atomically. Readers load the
// current view once and work against it for the whole request; a flush
// landing meanwhile publishes a successor without disturbing them.
type View struct {
	// Epoch increments once per publication (flush, rules change, load).
	Epoch uint64
	// Version is the graph's mutation-journal version the view reflects.
	Version uint64
	// Snap is the immutable snapshot reads run against.
	Snap *gedlib.Snapshot
	// Val is a prepared validator over Snap for the entry's rules.
	Val *gedlib.Validator
	// Violations is the complete maintained violation set of the rules
	// in Snap, in canonical order.
	Violations []gedlib.Violation
	// Names maps between wire-format string node ids and NodeIDs as of
	// this view.
	Names *nameTable
	// Rules is the rule set the violations were maintained under.
	Rules gedlib.RuleSet
}

// GraphEntry is one tenant graph of the catalog.
type GraphEntry struct {
	name string
	cat  *Catalog

	// mu guards the mutable graph, the name working-copy, the rule set
	// and the closed flag. The flusher holds it exclusively for the
	// whole mutate+Apply+publish sequence; chase requests hold it
	// shared just long enough to clone the graph. The read path never
	// takes it.
	mu     sync.RWMutex
	graph  *gedlib.Graph
	names  *nameTable
	sigma  gedlib.RuleSet
	closed bool

	epoch atomic.Uint64
	view  atomic.Pointer[View]

	// retained is a bounded observability history of recent views
	// (newest last). Reader correctness never depends on it — a reader
	// holds its view alive through its own reference; retention exists
	// so epochs just replaced remain inspectable, and stays cheap
	// because successive snapshots share storage copy-on-write.
	retainMu sync.Mutex
	retained []*View

	// b is the write batcher; nil on follower entries, which reject
	// writes with ErrReadOnly. An atomic pointer because promotion
	// attaches a batcher to a live entry that lock-free paths (Mutate,
	// Stats) are reading concurrently.
	b atomic.Pointer[batcher]

	// ps is the entry's durability handle (nil when the catalog is
	// in-memory or a follower). An atomic pointer for the same reason as
	// b: promotion swaps a writable handle onto a live replica entry.
	// The GraphStore's own methods are internally synchronized.
	ps atomic.Pointer[persist.GraphStore]
	// rulesSrc is the DSL source sigma was parsed from (checkpoints
	// persist the source, not the parsed set). Guarded by mu.
	rulesSrc string

	// follower marks a read-only replica entry; mFolRecords/folLag are
	// its replication counters (records applied, staleness of the last),
	// folFailures the consecutive tail/recover failures (reset on
	// success).
	follower    atomic.Bool
	mFolRecords *obs.Counter
	folLag      atomic.Int64
	folFailures atomic.Uint64

	// leaderEpoch is the leadership epoch this entry's WAL handle writes
	// under (0 until restored/promoted); promotionNanos is the wall time
	// of the last promotion that created this leader (its RTO share).
	leaderEpoch    atomic.Uint64
	promotionNanos atomic.Int64

	// health is the entry's serving health (healthOK/healthDegraded),
	// checked lock-free on the write path. The cause and probe state
	// live behind healthMu, a leaf lock (never held around other locks);
	// probeStop ends the auto-probe loop when the entry closes.
	health        atomic.Int32
	healthMu      sync.Mutex
	healthErr     error
	degradedSince time.Time
	probing       bool
	probeStop     chan struct{}
	stopProbe     sync.Once

	// Serving counters, resolved from the catalog registry by
	// initMetrics (see obs.go): degraded-mode transitions, transient WAL
	// append retries, recovery probes, and reads served. The registry is
	// catalog-lifetime, so the handles are never nil on a live entry.
	mWALRetries *obs.Counter
	mProbes     *obs.Counter
	mRecoveries *obs.Counter
	mDegraded   *obs.Counter
	mReads      *obs.Counter
	// mFenced counts fenced transitions; mFencedAppends the WAL
	// appends/syncs the epoch fence actually refused.
	mFenced        *obs.Counter
	mFencedAppends *obs.Counter

	// Per-stage flush pipeline histograms (pipeline instrumentation:
	// nil no-ops when the observer is disabled).
	stQueue, stWAL, stFsync, stApply, stPublish *obs.Histogram
}

// Create adds a named graph to the catalog. graphJSON, when non-nil, is
// the JSON wire format accepted by gedlib.LoadGraph; nil creates an
// empty graph. The new entry starts with an empty rule set and an
// already-published first view.
func (c *Catalog) Create(name string, graphJSON []byte) (*GraphEntry, error) {
	if c.follower.Load() {
		return nil, ErrReadOnly
	}
	if !validName(name) {
		return nil, fmt.Errorf("serve: invalid graph name %q (want [A-Za-z0-9_.-]{1,128})", name)
	}
	// Reserve the name before the load/seed work: a racing duplicate
	// fails here instead of seeding a throwaway graph through the
	// shared engine (which could LRU-evict a live tenant's store).
	c.mu.Lock()
	_, dup := c.entries[name]
	if _, mid := c.creating[name]; dup || mid {
		c.mu.Unlock()
		return nil, ErrExists
	}
	c.creating[name] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.creating, name)
		c.mu.Unlock()
	}()
	g := gedlib.NewGraph()
	names := newNameTable(nil)
	if graphJSON != nil {
		var byName map[string]gedlib.NodeID
		var err error
		g, byName, err = gedlib.LoadGraph(graphJSON)
		if err != nil {
			return nil, fmt.Errorf("serve: load graph %q: %w", name, err)
		}
		names = newNameTable(byName)
	}
	ent := &GraphEntry{name: name, cat: c, graph: g, names: names, sigma: gedlib.RuleSet{},
		probeStop: make(chan struct{})}
	ent.initMetrics()
	if err := ent.refreshLocked(context.Background()); err != nil {
		c.eng.Forget(g) // release whatever the failed seed cached
		return nil, err
	}
	if c.store != nil {
		gs, err := c.store.Create(name, ent.persistState())
		if err != nil {
			c.eng.Forget(g)
			if errors.Is(err, persist.ErrExists) {
				// On-disk leftovers under a name the catalog does not
				// hold (e.g. a crashed boot that skipped Restore) are a
				// conflict, not something to silently overwrite.
				return nil, fmt.Errorf("%w (durable state at %s)", ErrExists, name)
			}
			return nil, err
		}
		ent.ps.Store(gs)
		ent.leaderEpoch.Store(gs.Epoch())
	}
	nb := newBatcher(ent, c.cfg)
	ent.b.Store(nb)

	c.mu.Lock()
	c.entries[name] = ent // the reservation guarantees the slot is free
	c.mu.Unlock()
	go nb.run()
	return ent, nil
}

// Get returns the named entry.
func (c *Catalog) Get(name string) (*GraphEntry, error) {
	c.mu.RLock()
	ent := c.entries[name]
	c.mu.RUnlock()
	if ent == nil {
		return nil, ErrNotFound
	}
	return ent, nil
}

// Names lists the catalog's graph names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Delete removes a graph: pending writes are flushed, the batcher
// stops, the engine's cached state for the graph is released, and its
// durable directory (if any) is removed.
func (c *Catalog) Delete(name string) error {
	if c.follower.Load() {
		return ErrReadOnly
	}
	c.mu.Lock()
	ent := c.entries[name]
	delete(c.entries, name)
	c.mu.Unlock()
	if ent == nil {
		return ErrNotFound
	}
	ent.close(true)
	// Drop every metric series labeled with the graph — gauges registered
	// through GaugeFunc close over the entry, so removal is also what
	// stops the registry from pinning its state.
	c.reg.RemoveLabeled("graph", name)
	if ent.ps.Load() != nil {
		return c.store.Delete(name)
	}
	return nil
}

// Close shuts the whole catalog down: follower tails stop first, then
// every entry drains its pending writes and (when durable) writes a
// final checkpoint.
func (c *Catalog) Close() {
	c.roleMu.Lock()
	defer c.roleMu.Unlock()
	if c.followCancel != nil {
		c.followCancel()
		c.followWG.Wait()
		c.followCancel = nil
	}
	c.mu.Lock()
	ents := make([]*GraphEntry, 0, len(c.entries))
	for _, e := range c.entries {
		ents = append(ents, e)
	}
	c.entries = make(map[string]*GraphEntry)
	c.mu.Unlock()
	for _, e := range ents {
		e.close(false)
	}
}

// close shuts one entry down. Ordering is load-bearing: the batcher is
// drained FIRST, so every accepted write reaches the graph and the WAL
// before any per-graph resource goes away — closing the GraphStore (or
// marking the entry closed) ahead of the drain would fail or drop the
// final flush. drop skips the parting checkpoint (the caller is about
// to delete the directory anyway).
func (ent *GraphEntry) close(drop bool) {
	if b := ent.b.Load(); b != nil {
		b.close()
	}
	if ent.probeStop != nil {
		ent.stopProbe.Do(func() { close(ent.probeStop) })
	}
	// Then mark the entry closed and forget the engine state under the
	// entry lock: an in-flight RegisterRules either finished before the
	// Forget or will observe closed and leave no trace — it cannot
	// re-seed a cache entry for a graph the catalog dropped.
	ent.mu.Lock()
	if ps := ent.ps.Load(); ps != nil {
		if !drop {
			// A clean shutdown checkpoints, so the next boot recovers
			// from the image alone instead of replaying the whole tail.
			// (A fenced handle refuses this inside persist — harmless;
			// the new leader owns the log now.)
			_ = ps.Checkpoint(ent.persistState())
		}
		_ = ps.Close()
	}
	ent.closed = true
	ent.cat.eng.Forget(ent.graph)
	ent.mu.Unlock()
}

// persistState assembles the durable state of the entry. Callers hold
// ent.mu (or have sole access during Create).
func (ent *GraphEntry) persistState() persist.State {
	return persist.State{Graph: ent.graph, Names: ent.names.dense(), Rules: ent.rulesSrc}
}

// Name returns the entry's catalog name.
func (ent *GraphEntry) Name() string { return ent.name }

// CurrentView returns the latest published view. It never blocks and
// never observes a partially applied batch.
func (ent *GraphEntry) CurrentView() *View {
	ent.mReads.Inc()
	return ent.view.Load()
}

// RegisterRules replaces the entry's rule set with the rules parsed
// from the DSL source, runs the seeding validation, and publishes a
// view carrying the new maintained violation set. It returns the new
// view.
func (ent *GraphEntry) RegisterRules(ctx context.Context, src string) (*View, error) {
	if ent.follower.Load() {
		return nil, ErrReadOnly
	}
	sigma, err := gedlib.ParseRules(src)
	if err != nil {
		return nil, err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return nil, ErrClosed
	}
	switch ent.health.Load() {
	case healthFenced:
		return nil, ErrFenced
	case healthDegraded:
		return nil, ErrDegraded
	}
	old, oldSrc := ent.sigma, ent.rulesSrc
	ent.sigma, ent.rulesSrc = sigma, src
	if err := ent.refreshLocked(ctx); err != nil {
		// A failed seed (cancellation mid-validation) must not leave the
		// rejected rules installed: later flushes would maintain a set
		// the caller was told did not take effect.
		ent.sigma, ent.rulesSrc = old, oldSrc
		return nil, err
	}
	if ps := ent.ps.Load(); ps != nil {
		if err := ps.AppendRules(ent.graph.Version(), src); err != nil {
			if errors.Is(err, persist.ErrFenced) {
				// A newer epoch owns the log: the registration was never
				// durable and must not be vouched for. Fence the entry
				// and roll the in-memory rules back.
				ent.mFencedAppends.Inc()
				ent.fence(err)
				ent.sigma, ent.rulesSrc = old, oldSrc
				_ = ent.refreshLocked(ctx)
				return nil, fmt.Errorf("%w: %v", ErrFenced, err)
			}
			// The rules ARE active in memory; only their durability
			// failed. Surface it as a flush-class error — the caller can
			// retry the registration, which is idempotent.
			return nil, fmt.Errorf("%w: rules active but not durable: %v", ErrFlush, err)
		}
	}
	return ent.view.Load(), nil
}

// Mutate enqueues ops onto the entry's write batcher and waits for the
// flush that applies them. The returned result carries the post-flush
// version/epoch and any per-op errors. A ctx expiry abandons only the
// wait: the enqueued ops are still applied by a later flush.
func (ent *GraphEntry) Mutate(ctx context.Context, ops []Op) (WriteResult, error) {
	b := ent.b.Load()
	if b == nil {
		return WriteResult{}, ErrReadOnly
	}
	// Fail fast while degraded or fenced rather than queueing ops that
	// the flush would reject anyway (the flush re-checks, so this is
	// advisory).
	switch ent.health.Load() {
	case healthFenced:
		return WriteResult{}, ErrFenced
	case healthDegraded:
		return WriteResult{}, ErrDegraded
	}
	return b.enqueue(ctx, ops)
}

// Chase runs the engine's chase over a point-in-time copy of the graph
// under the entry's current rules. The copy is taken under a shared
// lock (the one read that briefly coordinates with flushes — the chase
// inspects the build-time graph, not the published snapshot).
func (ent *GraphEntry) Chase(ctx context.Context) (*gedlib.ChaseResult, error) {
	ent.mu.RLock()
	clone := ent.graph.Clone()
	sigma := ent.sigma
	ent.mu.RUnlock()
	return ent.cat.eng.Chase(ctx, clone, sigma)
}

// refreshLocked re-runs Engine.Apply under the entry's current rules
// and publishes a fresh view. Callers hold ent.mu exclusively (or have
// sole access during Create).
func (ent *GraphEntry) refreshLocked(ctx context.Context) error {
	vs, err := ent.cat.eng.Apply(ctx, ent.graph, ent.sigma)
	if err != nil {
		return err
	}
	snap := ent.cat.eng.SnapshotOf(ent.graph)
	ent.publishLocked(snap, vs)
	return nil
}

// publishLocked hands a new view to the read path: epoch bump, atomic
// pointer swap, bounded retention of the predecessors. The prepared
// validator is rebased from the previous view when the rules did not
// change, so steady-state publication costs O(|Σ|), not a recompile.
func (ent *GraphEntry) publishLocked(snap *gedlib.Snapshot, vs []gedlib.Violation) {
	prev := ent.view.Load()
	var val *gedlib.Validator
	if prev != nil && prev.Val != nil && gedlib.SameRules(prev.Rules, ent.sigma) {
		val = prev.Val.Rebase(snap)
	} else {
		val = gedlib.NewSnapshotValidator(snap, ent.sigma)
		// A recompile gets fresh match plans; route their per-rule
		// profiling (read-path re-validation work) into the shared
		// registry. Rebased validators inherit their plans' sinks.
		val.Observe(ent.cat.pipelineReg())
	}
	v := &View{
		Epoch:      ent.epoch.Add(1),
		Version:    snap.SourceVersion(),
		Snap:       snap,
		Val:        val,
		Violations: vs,
		Names:      ent.names,
		Rules:      ent.sigma,
	}
	ent.view.Store(v)

	ent.retainMu.Lock()
	ent.retained = append(ent.retained, v)
	if n := ent.cat.cfg.RetainViews; len(ent.retained) > n {
		ent.retained = append(ent.retained[:0:0], ent.retained[len(ent.retained)-n:]...)
	}
	ent.retainMu.Unlock()
}

// validName accepts names every /graphs/{name}/... route can address:
// the HTTP mux's {name} wildcard matches exactly one path segment, so a
// name containing '/' (or other URL-significant bytes) would create a
// tenant no request could ever reach again.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

// flushTestHook, when non-nil, runs at the top of every applyBatch
// (tests inject panics and fault windows through it).
var flushTestHook func(*GraphEntry)

// flushBatch runs one merged batch through applyBatch and completes the
// requests after the view lands, so a returned write is visible to
// subsequent reads.
func (ent *GraphEntry) flushBatch(reqs []*writeReq) {
	view, err := ent.applyBatch(reqs)
	for _, req := range reqs {
		if err != nil {
			req.res.Err = err
		}
		if view != nil {
			req.res.Version, req.res.Epoch = view.Version, view.Epoch
		}
		req.done <- req.res
	}
}

// applyBatch applies one merged batch: every op of every request is
// applied to the mutable graph, then a single Engine.Apply advances the
// snapshot and the maintained violation set in O(|Δ|), and one view is
// published covering the whole batch. It returns the view the requests
// complete against (the latest, whether or not this batch advanced it).
//
// The batch is panic-contained: a panicking op application or rule plan
// fails the batch instead of killing the flusher goroutine and hanging
// every queued writer. The LIFO defers release the entry lock even
// then. A durable entry additionally degrades on panic — the graph may
// hold ops the WAL never saw, and only a heal checkpoint re-anchors
// them.
func (ent *GraphEntry) applyBatch(reqs []*writeReq) (view *View, err error) {
	sp := ent.cat.tracer().Start(ent.name, "flush")
	ent.mu.Lock()
	defer ent.mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: panic: %v", ErrFlush, p)
			if ent.ps.Load() != nil {
				ent.degrade(err)
			}
		}
		view = ent.view.Load()
		sp.Fail(err)
		sp.End()
	}()
	// queue_wait is the oldest request's time-in-queue, measured up to
	// the moment the flush holds the entry lock — what a writer at the
	// head of the batch actually waited before its ops started applying.
	var oldest time.Time
	for _, req := range reqs {
		if oldest.IsZero() || req.at.Before(oldest) {
			oldest = req.at
		}
	}
	if !oldest.IsZero() {
		wait := time.Since(oldest)
		ent.stQueue.Observe(wait)
		sp.StageDur(stageQueueWait, wait)
	}
	if ent.closed {
		return nil, ErrClosed
	}
	switch ent.health.Load() {
	case healthFenced:
		return nil, ErrFenced
	case healthDegraded:
		return nil, ErrDegraded
	}
	if hook := flushTestHook; hook != nil {
		hook(ent)
	}
	from := ent.graph.Version()
	nb := &nameBuilder{cur: ent.names}
	for _, req := range reqs {
		req.res.Applied = 0
		for i := range req.ops {
			if err := applyOp(ent.graph, nb, req.ops[i]); err != nil {
				req.res.OpErrors = append(req.res.OpErrors, OpError{Index: i, Message: err.Error()})
				continue
			}
			req.res.Applied++
		}
	}
	ent.names = nb.table()
	sp.Stage("mutate")
	// Write-ahead: the batch's delta reaches the WAL (and, in batch
	// mode, one group-commit fsync covering every write it coalesced)
	// before the view is published and the requests complete — a
	// returned write is durable, not just visible.
	if lerr := ent.logBatchLocked(from, sp); lerr != nil {
		if errors.Is(lerr, persist.ErrFenced) {
			// Not a server fault: a newer epoch owns the log. The batch
			// was applied in memory but never acked durable; the fenced
			// entry serves its pre-batch view read-only.
			return nil, fmt.Errorf("%w: %v", ErrFenced, lerr)
		}
		return nil, fmt.Errorf("%w: %v", ErrFlush, lerr)
	}
	applyStart := time.Now()
	vs, aerr := ent.cat.eng.Apply(context.Background(), ent.graph, ent.sigma)
	if aerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrFlush, aerr)
	}
	applyDur := time.Since(applyStart)
	ent.stApply.Observe(applyDur)
	sp.StageDur(stageApply, applyDur)
	pubStart := time.Now()
	ent.publishLocked(ent.cat.eng.SnapshotOf(ent.graph), vs)
	pubDur := time.Since(pubStart)
	ent.stPublish.Observe(pubDur)
	sp.StageDur(stagePublish, pubDur)
	return nil, nil
}

// faultLocked routes a persist-layer failure to the matching health
// transition: an epoch fence (persist.ErrFenced — a promoted follower
// owns the log now) fences the entry, sticky and unprobed; anything
// else degrades it and starts the probe loop.
func (ent *GraphEntry) faultLocked(err error) {
	if errors.Is(err, persist.ErrFenced) {
		ent.mFencedAppends.Inc()
		ent.fence(err)
		return
	}
	ent.degrade(err)
}

// Flush-path retry tuning: transient append errors back off 2→4→8ms
// (capped) between attempts, all while holding the entry lock — short
// enough that queued writers wait out a blip instead of failing.
const (
	flushRetryDelay    = 2 * time.Millisecond
	flushRetryMaxDelay = 10 * time.Millisecond
)

// logBatchLocked persists the ops a flush just applied: one delta
// record, one group-commit sync, and — when enough ops accumulated — a
// checkpoint that rotates the WAL. Holding ent.mu keeps the graph
// quiesced for the checkpoint image. No-op for non-durable entries.
//
// Error policy: transient append errors (EIO, EINTR, ...) retry in
// place with capped backoff — the WAL repairs its own torn tail before
// the retried record lands. Exhausted retries and permanent errors
// (ENOSPC, EROFS) degrade the graph. A failed group-commit fsync
// degrades immediately and is never retried: the kernel may already
// have dropped the dirty pages, so a passing retry would ack a write
// that is not on disk. Recovery from degraded is always a full
// checkpoint rewrite (see Probe).
func (ent *GraphEntry) logBatchLocked(from uint64, sp *obs.Span) error {
	ps := ent.ps.Load()
	if ps == nil {
		return nil
	}
	d := ent.graph.DeltaSince(from)
	switch {
	case d == nil:
		// The journal no longer reaches back to `from` (possible only
		// after an exceptionally large batch trimmed it). A checkpoint
		// of the current state re-anchors the log losslessly.
		if err := ps.Checkpoint(ent.persistState()); err != nil {
			ent.faultLocked(err)
			return err
		}
		return nil
	case d.Empty():
		return nil // every op of the batch was rejected
	}
	names := make([]string, len(d.Nodes))
	for i, n := range d.Nodes {
		names[i] = ent.names.raw(n.ID)
	}
	appendStart := time.Now()
	delay := flushRetryDelay
	for attempt := 0; ; attempt++ {
		err := ps.AppendDelta(d, names)
		if err == nil {
			break
		}
		if errors.Is(err, persist.ErrFenced) || !persist.IsTransient(err) || attempt >= ent.cat.cfg.FlushRetries {
			ent.faultLocked(err)
			return err
		}
		ent.mWALRetries.Inc()
		time.Sleep(delay)
		if delay *= 2; delay > flushRetryMaxDelay {
			delay = flushRetryMaxDelay
		}
	}
	appendDur := time.Since(appendStart)
	ent.stWAL.Observe(appendDur)
	sp.StageDur(stageWALAppend, appendDur)
	syncStart := time.Now()
	// The post-sync fence check is the ack gate: a deposed leader's
	// group commit fails here (persist re-reads the fence table after
	// the fsync), so the batch is never reported durable.
	if err := ps.Sync(); err != nil {
		ent.faultLocked(err)
		return err
	}
	syncDur := time.Since(syncStart)
	ent.stFsync.Observe(syncDur)
	sp.StageDur(stageFsync, syncDur)
	if ps.CheckpointDue() {
		ckptStart := time.Now()
		if err := ps.Checkpoint(ent.persistState()); err != nil {
			// The batch is already durable in the WAL; a failed rotation
			// only defers compaction. Still degrade on a permanent error
			// — the disk is refusing writes and the log would otherwise
			// grow without bound — but ack the batch either way. (A
			// fence here cannot un-ack the batch: the sync above passed
			// its fence check, so the batch predates the takeover bound
			// and the new leader adopted it.)
			if !persist.IsTransient(err) {
				ent.faultLocked(err)
			}
		}
		sp.StageDur("checkpoint", time.Since(ckptStart))
	}
	return nil
}

// Restore re-adopts every graph persisted under the catalog's data
// directory: newest checkpoint + WAL tail replay per graph, rules
// re-registered from their persisted source, batcher started. It
// returns the restored names. Call it once, before serving traffic.
func (c *Catalog) Restore(ctx context.Context) ([]string, error) {
	if c.store == nil {
		return nil, errors.New("serve: Restore requires Config.DataDir")
	}
	names, err := c.store.Graphs()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		gs, rec, err := c.store.OpenGraph(name)
		if err != nil {
			return nil, fmt.Errorf("serve: restore %q: %w", name, err)
		}
		// A rebooting leader that may have been deposed while down
		// asserts the epoch it last held; if a successor took over, the
		// graph comes up fenced (read-only) instead of discovering it on
		// the first write.
		var fenceErr error
		if c.cfg.AssumeEpoch != nil {
			if aerr := gs.AssumeEpoch(*c.cfg.AssumeEpoch); aerr != nil {
				if !errors.Is(aerr, persist.ErrFenced) {
					_ = gs.Close()
					return nil, fmt.Errorf("serve: restore %q: %w", name, aerr)
				}
				fenceErr = aerr
			}
		}
		ent, err := c.adoptState(ctx, name, rec.State)
		if err != nil {
			_ = gs.Close()
			return nil, fmt.Errorf("serve: restore %q: %w", name, err)
		}
		ent.ps.Store(gs)
		ent.leaderEpoch.Store(gs.Epoch())
		if fenceErr != nil {
			ent.mFencedAppends.Inc()
			ent.fence(fenceErr)
		}
		nb := newBatcher(ent, c.cfg)
		ent.b.Store(nb)
		c.mu.Lock()
		c.entries[name] = ent
		c.mu.Unlock()
		go nb.run()
	}
	return names, nil
}

// Follow turns the catalog into a read-only replica of the store at
// Config.DataDir (another process's leader directory): every persisted
// graph is recovered and then kept fresh by tailing its WAL; graphs
// that appear later are picked up by a periodic rescan. Writes against
// a follower fail with ErrReadOnly. The tails stop when ctx is
// canceled or the catalog closes.
func (c *Catalog) Follow(ctx context.Context) error {
	if c.store == nil {
		return errors.New("serve: Follow requires Config.DataDir")
	}
	c.follower.Store(true)
	c.followCtx, c.followCancel = context.WithCancel(ctx)
	names, err := c.store.Graphs()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := c.followGraph(name); err != nil {
			return fmt.Errorf("serve: follow %q: %w", name, err)
		}
	}
	c.followWG.Add(1)
	go c.rescanLoop()
	return nil
}

// followGraph recovers one graph read-only and starts its tail loop.
func (c *Catalog) followGraph(name string) error {
	rec, err := c.store.Recover(name)
	if err != nil {
		return err
	}
	ent, err := c.adoptState(c.followCtx, name, rec.State)
	if err != nil {
		return err
	}
	ent.follower.Store(true)
	ent.initFollowerMetrics()
	c.mu.Lock()
	c.entries[name] = ent
	c.mu.Unlock()
	c.followWG.Add(1)
	go c.followLoop(ent, rec)
	return nil
}

// adoptState builds a catalog entry around recovered durable state:
// rules re-parsed from their source, name table from the dense column,
// first view published. The entry is not yet in the map and has no
// batcher or durability handle — the caller attaches those.
func (c *Catalog) adoptState(ctx context.Context, name string, st persist.State) (*GraphEntry, error) {
	sigma := gedlib.RuleSet{}
	if st.Rules != "" {
		var err error
		if sigma, err = gedlib.ParseRules(st.Rules); err != nil {
			return nil, fmt.Errorf("persisted rules: %w", err)
		}
	}
	ent := &GraphEntry{
		name: name, cat: c,
		graph: st.Graph, names: nameTableFromDense(st.Names),
		sigma: sigma, rulesSrc: st.Rules,
		probeStop: make(chan struct{}),
	}
	ent.initMetrics()
	if err := ent.refreshLocked(ctx); err != nil {
		c.eng.Forget(st.Graph)
		return nil, err
	}
	return ent, nil
}

// followerDegradeAfter is how many consecutive tail/recover failures a
// replica entry tolerates before its health flips to degraded (a single
// ErrLagBehind with an immediate re-recovery is normal operation, not a
// fault).
const followerDegradeAfter = 3

// tailFailed records one follower tail/recover failure; a streak of
// them degrades the replica's health so /healthz stops vouching for its
// freshness.
func (ent *GraphEntry) tailFailed(err error) {
	if ent.folFailures.Add(1) >= followerDegradeAfter {
		ent.degrade(err)
	}
}

// tailAdvanced records follower progress, clearing any failure streak.
func (ent *GraphEntry) tailAdvanced() {
	ent.folFailures.Store(0)
	if ent.health.Load() == healthDegraded {
		ent.setHealthy()
	}
}

// followLoop tails one graph's WAL forever, applying each record to the
// replica entry. A tail failure that is not a cancellation (lag beyond
// the leader's compaction, a corrupt segment) re-recovers from the
// newest checkpoint and resumes — the replica jumps forward, it never
// serves stale state silently. Repeated failures back off with jitter
// (reset on success) and, past a streak, degrade the replica's health.
func (c *Catalog) followLoop(ent *GraphEntry, rec *persist.Recovery) {
	defer c.followWG.Done()
	ctx := c.followCtx
	bo := newBackoff(50*time.Millisecond, 2*time.Second)
	for {
		err := c.store.Tail(ctx, ent.name, rec, c.cfg.FollowPoll, ent.applyTailRecord)
		if ctx.Err() != nil || errors.Is(err, ErrClosed) {
			return
		}
		ent.tailFailed(err)
		for {
			nrec, rerr := c.store.Recover(ent.name)
			if rerr == nil {
				if rerr = ent.resetTo(nrec.State); rerr == nil {
					rec = nrec
					bo.reset()
					ent.tailAdvanced()
					break
				}
			}
			if errors.Is(rerr, persist.ErrNotFound) {
				// The leader deleted the graph; drop the replica.
				c.mu.Lock()
				delete(c.entries, ent.name)
				c.mu.Unlock()
				ent.close(true)
				return
			}
			ent.tailFailed(rerr)
			select { // mid-compaction races and real faults both retry
			case <-ctx.Done():
				return
			case <-time.After(bo.next()):
			}
		}
	}
}

// rescanLoop watches the store for graphs created after Follow started,
// every Config.RescanInterval (jittered ±25% so a fleet of followers
// spreads its scans). Scan failures back off exponentially (with
// jitter) instead of hammering a failing store every interval.
func (c *Catalog) rescanLoop() {
	defer c.followWG.Done()
	ctx := c.followCtx
	base := c.cfg.RescanInterval
	maxDelay := 30 * time.Second
	if base > maxDelay {
		maxDelay = base
	}
	bo := newBackoff(base, maxDelay)
	delay := jitter(base)
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		names, err := c.store.Graphs()
		if err != nil {
			delay = bo.next()
			continue
		}
		ok := true
		for _, name := range names {
			c.mu.RLock()
			_, known := c.entries[name]
			c.mu.RUnlock()
			if !known {
				if err := c.followGraph(name); err != nil {
					ok = false // a half-created dir retries next scan
				}
			}
		}
		if ok {
			bo.reset()
			delay = jitter(base)
		} else {
			delay = bo.next()
		}
	}
}

// applyTailRecord applies one streamed WAL record to a replica entry
// and publishes the advanced view.
func (ent *GraphEntry) applyTailRecord(tr persist.TailRecord) error {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return ErrClosed
	}
	if tr.Delta != nil {
		if err := ent.graph.ApplyDelta(tr.Delta); err != nil {
			return err
		}
		nb := &nameBuilder{cur: ent.names}
		for i, n := range tr.Delta.Nodes {
			if tr.Names[i] != "" {
				nb.add(tr.Names[i], n.ID)
			}
		}
		ent.names = nb.table()
	}
	if tr.Rules != nil {
		sigma, err := gedlib.ParseRules(*tr.Rules)
		if err != nil {
			return err
		}
		ent.sigma, ent.rulesSrc = sigma, *tr.Rules
	}
	if err := ent.refreshLocked(context.Background()); err != nil {
		return err
	}
	ent.mFolRecords.Inc()
	ent.folLag.Store(time.Since(tr.AppendedAt).Nanoseconds())
	ent.tailAdvanced()
	return nil
}

// resetTo swaps a replica entry onto freshly recovered state (used
// after the tail lost its log position).
func (ent *GraphEntry) resetTo(st persist.State) error {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return ErrClosed
	}
	sigma := gedlib.RuleSet{}
	if st.Rules != "" {
		var err error
		if sigma, err = gedlib.ParseRules(st.Rules); err != nil {
			return err
		}
	}
	old := ent.graph
	ent.graph, ent.names = st.Graph, nameTableFromDense(st.Names)
	ent.sigma, ent.rulesSrc = sigma, st.Rules
	err := ent.refreshLocked(context.Background())
	ent.cat.eng.Forget(old)
	return err
}

// Stats reports the entry's serving statistics.
func (ent *GraphEntry) Stats() EntryStats {
	view := ent.view.Load()
	ent.retainMu.Lock()
	retained := len(ent.retained)
	ent.retainMu.Unlock()
	var s EntryStats
	if b := ent.b.Load(); b != nil {
		s = b.stats()
	}
	s.Name = ent.name
	// The graph pointer is read under ent.mu (resetTo can swap it) but
	// ShardStats is called outside it — it takes the engine's own locks.
	ent.mu.RLock()
	g := ent.graph
	ent.mu.RUnlock()
	if ss, ok := ent.cat.eng.ShardStats(g); ok {
		s.Shards = ss.Shards
		s.Partitioner = ss.Partitioner
		s.CutEdges = ss.CutEdges
		s.ShardViolations = ss.ShardViolations
	}
	if psh := ent.ps.Load(); psh != nil {
		ps := psh.Stats()
		s.Durable = true
		s.WALBytes = ps.WALBytes
		s.WALRecords = ps.WALRecords
		s.LastFsyncNanos = ps.LastSync.Nanoseconds()
		s.CheckpointVersion = ps.CheckpointVersion
		s.CheckpointAgeOps = ps.OpsSinceCheckpoint
		s.LeaderEpoch = ps.Epoch
	}
	if ent.follower.Load() {
		s.Follower = true
		s.FollowerRecords = ent.mFolRecords.Value()
		s.FollowerLagNanos = ent.folLag.Load()
		s.FollowerFailures = ent.folFailures.Load()
	}
	h, herr := ent.Health()
	s.Health = h
	if herr != nil {
		s.HealthError = herr.Error()
	}
	switch {
	case h == "fenced":
		s.Role = "fenced"
	case s.Follower:
		s.Role = "follower"
	default:
		s.Role = "leader"
	}
	if pn := ent.promotionNanos.Load(); pn != 0 {
		s.PromotionNanos = pn
	}
	s.FencedAppends = ent.mFencedAppends.Value()
	ent.healthMu.Lock()
	since := ent.degradedSince
	ent.healthMu.Unlock()
	if !since.IsZero() {
		s.DegradedForNanos = time.Since(since).Nanoseconds()
	}
	s.WALRetries = ent.mWALRetries.Value()
	s.Probes = ent.mProbes.Value()
	s.Recoveries = ent.mRecoveries.Value()
	s.ReadsServed = ent.mReads.Value()
	s.RetainedViews = retained
	if view != nil {
		s.Epoch = view.Epoch
		s.Version = view.Version
		s.Nodes = view.Snap.NumNodes()
		s.Edges = view.Snap.NumEdges()
		s.Rules = len(view.Rules)
		s.Violations = len(view.Violations)
	}
	return s
}
