package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gedlib"
)

// Catalog owns the tenant graphs of a serving process: each entry is a
// mutable graph, its registered rule set, its coalescing write batcher,
// and the lineage of immutable views published to readers. All methods
// are safe for concurrent use.
type Catalog struct {
	cfg Config
	eng *gedlib.Engine

	mu      sync.RWMutex
	entries map[string]*GraphEntry
	// creating reserves names while their entry is still being loaded
	// and seeded, so a racing duplicate Create fails fast instead of
	// burning a full validation (and an engine cache slot) first.
	creating map[string]struct{}
}

// NewCatalog returns an empty catalog configured by cfg.
func NewCatalog(cfg Config) *Catalog {
	cfg = cfg.withDefaults()
	return &Catalog{
		cfg:      cfg,
		eng:      cfg.engine(),
		entries:  make(map[string]*GraphEntry),
		creating: make(map[string]struct{}),
	}
}

// Engine exposes the catalog's shared engine (chase requests and tests
// use it directly).
func (c *Catalog) Engine() *gedlib.Engine { return c.eng }

// View is one published read-path state of a graph: everything a
// reader needs, immutable, handed over atomically. Readers load the
// current view once and work against it for the whole request; a flush
// landing meanwhile publishes a successor without disturbing them.
type View struct {
	// Epoch increments once per publication (flush, rules change, load).
	Epoch uint64
	// Version is the graph's mutation-journal version the view reflects.
	Version uint64
	// Snap is the immutable snapshot reads run against.
	Snap *gedlib.Snapshot
	// Val is a prepared validator over Snap for the entry's rules.
	Val *gedlib.Validator
	// Violations is the complete maintained violation set of the rules
	// in Snap, in canonical order.
	Violations []gedlib.Violation
	// Names maps between wire-format string node ids and NodeIDs as of
	// this view.
	Names *nameTable
	// Rules is the rule set the violations were maintained under.
	Rules gedlib.RuleSet
}

// GraphEntry is one tenant graph of the catalog.
type GraphEntry struct {
	name string
	cat  *Catalog

	// mu guards the mutable graph, the name working-copy, the rule set
	// and the closed flag. The flusher holds it exclusively for the
	// whole mutate+Apply+publish sequence; chase requests hold it
	// shared just long enough to clone the graph. The read path never
	// takes it.
	mu     sync.RWMutex
	graph  *gedlib.Graph
	names  *nameTable
	sigma  gedlib.RuleSet
	closed bool

	epoch atomic.Uint64
	view  atomic.Pointer[View]

	// retained is a bounded observability history of recent views
	// (newest last). Reader correctness never depends on it — a reader
	// holds its view alive through its own reference; retention exists
	// so epochs just replaced remain inspectable, and stays cheap
	// because successive snapshots share storage copy-on-write.
	retainMu sync.Mutex
	retained []*View

	b *batcher

	readsServed atomic.Uint64
}

// Create adds a named graph to the catalog. graphJSON, when non-nil, is
// the JSON wire format accepted by gedlib.LoadGraph; nil creates an
// empty graph. The new entry starts with an empty rule set and an
// already-published first view.
func (c *Catalog) Create(name string, graphJSON []byte) (*GraphEntry, error) {
	if !validName(name) {
		return nil, fmt.Errorf("serve: invalid graph name %q (want [A-Za-z0-9_.-]{1,128})", name)
	}
	// Reserve the name before the load/seed work: a racing duplicate
	// fails here instead of seeding a throwaway graph through the
	// shared engine (which could LRU-evict a live tenant's store).
	c.mu.Lock()
	_, dup := c.entries[name]
	if _, mid := c.creating[name]; dup || mid {
		c.mu.Unlock()
		return nil, ErrExists
	}
	c.creating[name] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.creating, name)
		c.mu.Unlock()
	}()
	g := gedlib.NewGraph()
	names := newNameTable(nil)
	if graphJSON != nil {
		var byName map[string]gedlib.NodeID
		var err error
		g, byName, err = gedlib.LoadGraph(graphJSON)
		if err != nil {
			return nil, fmt.Errorf("serve: load graph %q: %w", name, err)
		}
		names = newNameTable(byName)
	}
	ent := &GraphEntry{name: name, cat: c, graph: g, names: names, sigma: gedlib.RuleSet{}}
	if err := ent.refreshLocked(context.Background()); err != nil {
		c.eng.Forget(g) // release whatever the failed seed cached
		return nil, err
	}
	ent.b = newBatcher(ent, c.cfg)

	c.mu.Lock()
	c.entries[name] = ent // the reservation guarantees the slot is free
	c.mu.Unlock()
	go ent.b.run()
	return ent, nil
}

// Get returns the named entry.
func (c *Catalog) Get(name string) (*GraphEntry, error) {
	c.mu.RLock()
	ent := c.entries[name]
	c.mu.RUnlock()
	if ent == nil {
		return nil, ErrNotFound
	}
	return ent, nil
}

// Names lists the catalog's graph names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Delete removes a graph: pending writes are flushed, the batcher
// stops, and the engine's cached state for the graph is released.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	ent := c.entries[name]
	delete(c.entries, name)
	c.mu.Unlock()
	if ent == nil {
		return ErrNotFound
	}
	ent.close()
	return nil
}

// Close shuts the whole catalog down, flushing every pending write.
func (c *Catalog) Close() {
	c.mu.Lock()
	ents := make([]*GraphEntry, 0, len(c.entries))
	for _, e := range c.entries {
		ents = append(ents, e)
	}
	c.entries = make(map[string]*GraphEntry)
	c.mu.Unlock()
	for _, e := range ents {
		e.close()
	}
}

func (ent *GraphEntry) close() {
	// Drain the batcher first (its flusher exits only with an empty
	// queue), then mark the entry closed and forget the engine state
	// under the entry lock: an in-flight RegisterRules either finished
	// before the Forget or will observe closed and leave no trace — it
	// cannot re-seed a cache entry for a graph the catalog dropped.
	ent.b.close()
	ent.mu.Lock()
	ent.closed = true
	ent.cat.eng.Forget(ent.graph)
	ent.mu.Unlock()
}

// Name returns the entry's catalog name.
func (ent *GraphEntry) Name() string { return ent.name }

// CurrentView returns the latest published view. It never blocks and
// never observes a partially applied batch.
func (ent *GraphEntry) CurrentView() *View {
	ent.readsServed.Add(1)
	return ent.view.Load()
}

// RegisterRules replaces the entry's rule set with the rules parsed
// from the DSL source, runs the seeding validation, and publishes a
// view carrying the new maintained violation set. It returns the new
// view.
func (ent *GraphEntry) RegisterRules(ctx context.Context, src string) (*View, error) {
	sigma, err := gedlib.ParseRules(src)
	if err != nil {
		return nil, err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return nil, ErrClosed
	}
	old := ent.sigma
	ent.sigma = sigma
	if err := ent.refreshLocked(ctx); err != nil {
		// A failed seed (cancellation mid-validation) must not leave the
		// rejected rules installed: later flushes would maintain a set
		// the caller was told did not take effect.
		ent.sigma = old
		return nil, err
	}
	return ent.view.Load(), nil
}

// Mutate enqueues ops onto the entry's write batcher and waits for the
// flush that applies them. The returned result carries the post-flush
// version/epoch and any per-op errors. A ctx expiry abandons only the
// wait: the enqueued ops are still applied by a later flush.
func (ent *GraphEntry) Mutate(ctx context.Context, ops []Op) (WriteResult, error) {
	return ent.b.enqueue(ctx, ops)
}

// Chase runs the engine's chase over a point-in-time copy of the graph
// under the entry's current rules. The copy is taken under a shared
// lock (the one read that briefly coordinates with flushes — the chase
// inspects the build-time graph, not the published snapshot).
func (ent *GraphEntry) Chase(ctx context.Context) (*gedlib.ChaseResult, error) {
	ent.mu.RLock()
	clone := ent.graph.Clone()
	sigma := ent.sigma
	ent.mu.RUnlock()
	return ent.cat.eng.Chase(ctx, clone, sigma)
}

// refreshLocked re-runs Engine.Apply under the entry's current rules
// and publishes a fresh view. Callers hold ent.mu exclusively (or have
// sole access during Create).
func (ent *GraphEntry) refreshLocked(ctx context.Context) error {
	vs, err := ent.cat.eng.Apply(ctx, ent.graph, ent.sigma)
	if err != nil {
		return err
	}
	snap := ent.cat.eng.SnapshotOf(ent.graph)
	ent.publishLocked(snap, vs)
	return nil
}

// publishLocked hands a new view to the read path: epoch bump, atomic
// pointer swap, bounded retention of the predecessors. The prepared
// validator is rebased from the previous view when the rules did not
// change, so steady-state publication costs O(|Σ|), not a recompile.
func (ent *GraphEntry) publishLocked(snap *gedlib.Snapshot, vs []gedlib.Violation) {
	prev := ent.view.Load()
	var val *gedlib.Validator
	if prev != nil && prev.Val != nil && gedlib.SameRules(prev.Rules, ent.sigma) {
		val = prev.Val.Rebase(snap)
	} else {
		val = gedlib.NewSnapshotValidator(snap, ent.sigma)
	}
	v := &View{
		Epoch:      ent.epoch.Add(1),
		Version:    snap.SourceVersion(),
		Snap:       snap,
		Val:        val,
		Violations: vs,
		Names:      ent.names,
		Rules:      ent.sigma,
	}
	ent.view.Store(v)

	ent.retainMu.Lock()
	ent.retained = append(ent.retained, v)
	if n := ent.cat.cfg.RetainViews; len(ent.retained) > n {
		ent.retained = append(ent.retained[:0:0], ent.retained[len(ent.retained)-n:]...)
	}
	ent.retainMu.Unlock()
}

// validName accepts names every /graphs/{name}/... route can address:
// the HTTP mux's {name} wildcard matches exactly one path segment, so a
// name containing '/' (or other URL-significant bytes) would create a
// tenant no request could ever reach again.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

// flushBatch applies one merged batch: every op of every request is
// applied to the mutable graph, then a single Engine.Apply advances the
// snapshot and the maintained violation set in O(|Δ|), and one view is
// published covering the whole batch. Requests are completed after the
// view lands, so a returned write is visible to subsequent reads.
func (ent *GraphEntry) flushBatch(reqs []*writeReq) {
	ent.mu.Lock()
	nb := &nameBuilder{cur: ent.names}
	for _, req := range reqs {
		req.res.Applied = 0
		for i := range req.ops {
			if err := applyOp(ent.graph, nb, req.ops[i]); err != nil {
				req.res.OpErrors = append(req.res.OpErrors, OpError{Index: i, Message: err.Error()})
				continue
			}
			req.res.Applied++
		}
	}
	ent.names = nb.table()
	vs, err := ent.cat.eng.Apply(context.Background(), ent.graph, ent.sigma)
	if err == nil {
		snap := ent.cat.eng.SnapshotOf(ent.graph)
		ent.publishLocked(snap, vs)
	}
	view := ent.view.Load()
	ent.mu.Unlock()

	for _, req := range reqs {
		if err != nil {
			req.res.Err = fmt.Errorf("%w: %v", ErrFlush, err)
		}
		if view != nil {
			req.res.Version, req.res.Epoch = view.Version, view.Epoch
		}
		req.done <- req.res
	}
}

// Stats reports the entry's serving statistics.
func (ent *GraphEntry) Stats() EntryStats {
	view := ent.view.Load()
	ent.retainMu.Lock()
	retained := len(ent.retained)
	ent.retainMu.Unlock()
	s := ent.b.stats()
	s.Name = ent.name
	s.ReadsServed = ent.readsServed.Load()
	s.RetainedViews = retained
	if view != nil {
		s.Epoch = view.Epoch
		s.Version = view.Version
		s.Nodes = view.Snap.NumNodes()
		s.Edges = view.Snap.NumEdges()
		s.Rules = len(view.Rules)
		s.Violations = len(view.Violations)
	}
	return s
}
