package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestFlushPanicContained: a panic inside a flush (a poisoned rule
// plan, a bad op application) must fail that batch with ErrFlush and
// leave the batcher alive for the next write — not kill the flusher
// goroutine and hang every queued writer.
func TestFlushPanicContained(t *testing.T) {
	c, err := NewCatalog(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ent, err := c.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := true
	flushTestHook = func(e *GraphEntry) {
		if poisoned {
			poisoned = false
			panic("poisoned rule plan")
		}
	}
	defer func() { flushTestHook = nil }()

	_, err = ent.Mutate(context.Background(), []Op{{Op: "add_node", ID: "a", Label: "person"}})
	if !errors.Is(err, ErrFlush) || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("poisoned flush: err=%v, want ErrFlush wrapping the panic", err)
	}
	// In-memory entries do not degrade on panic (there is no WAL to
	// diverge from); the next flush must just work.
	if h, _ := ent.Health(); h != "ok" {
		t.Fatalf("in-memory entry health %q after panic, want ok", h)
	}
	res, err := ent.Mutate(context.Background(), []Op{{Op: "add_node", ID: "b", Label: "person"}})
	if err != nil {
		t.Fatalf("mutate after contained panic: %v", err)
	}
	if res.Applied != 1 {
		t.Fatalf("applied %d, want 1", res.Applied)
	}
}

// TestFlushPanicDegradesDurable: on a durable entry the panic may have
// left ops in the graph that never reached the WAL, so the entry must
// degrade — and a Probe (the operator enable path) must heal it via a
// full checkpoint rewrite.
func TestFlushPanicDegradesDurable(t *testing.T) {
	c, err := NewCatalog(Config{DataDir: t.TempDir(), ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ent, err := c.Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := true
	flushTestHook = func(e *GraphEntry) {
		if poisoned {
			poisoned = false
			panic("poisoned rule plan")
		}
	}
	defer func() { flushTestHook = nil }()

	if _, err = ent.Mutate(context.Background(), []Op{{Op: "add_node", ID: "a", Label: "person"}}); !errors.Is(err, ErrFlush) {
		t.Fatalf("poisoned flush: err=%v, want ErrFlush", err)
	}
	if h, _ := ent.Health(); h != "degraded" {
		t.Fatalf("durable entry health %q after panic, want degraded", h)
	}
	if _, err := ent.Mutate(context.Background(), []Op{{Op: "add_node", ID: "b", Label: "person"}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutate while degraded: err=%v, want ErrDegraded", err)
	}
	// Reads keep serving the last published view while degraded.
	if view := ent.CurrentView(); view == nil {
		t.Fatal("no view while degraded")
	}
	if err := ent.Probe(context.Background()); err != nil {
		t.Fatalf("probe on a healthy disk: %v", err)
	}
	if h, _ := ent.Health(); h != "ok" {
		t.Fatalf("health %q after probe, want ok", h)
	}
	if _, err := ent.Mutate(context.Background(), []Op{{Op: "add_node", ID: "c", Label: "person"}}); err != nil {
		t.Fatalf("mutate after heal: %v", err)
	}
	if got := ent.Stats(); got.Recoveries != 1 || got.Probes != 1 {
		t.Fatalf("stats recoveries=%d probes=%d, want 1/1", got.Recoveries, got.Probes)
	}
}
