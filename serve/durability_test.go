package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gedlib"
	"gedlib/workload"
)

// copyTree copies a graph's durable directory file by file — the moral
// equivalent of what a crash leaves on disk, captured point-in-time
// while the writer is quiescent.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		s, d := filepath.Join(src, de.Name()), filepath.Join(dst, de.Name())
		if de.IsDir() {
			copyTree(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeCrashRecoveryOracle is the serve-level crash-safety check:
// hammer a durable catalog with concurrent writers, "crash" by copying
// the data directory as-is (never a clean Close), corrupt the WAL tail
// with garbage for good measure, restore a fresh catalog from the copy,
// and require the recovered violation set to equal a completely fresh
// engine's verdict over the live graph — byte-identical, not just
// plausible.
func TestServeCrashRecoveryOracle(t *testing.T) {
	base := t.TempDir()
	leaderDir := filepath.Join(base, "leader")
	cat, err := NewCatalog(Config{
		MaxDelay: time.Millisecond, FlushOps: 8,
		DataDir: leaderDir, CheckpointEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately NOT closed: a crash never runs the shutdown path.

	g, _ := workload.KnowledgeBase(23, 40, 0.2)
	data, err := gedlib.MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ent, err := cat.Create("kb", data)
	if err != nil {
		t.Fatal(err)
	}
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	if _, err := ent.RegisterRules(context.Background(), gedlib.FormatRules(sigma)); err != nil {
		t.Fatal(err)
	}
	numNodes := ent.CurrentView().Snap.NumNodes()

	const writers, writesPerWriter = 4, 25
	types := []string{"programmer", "psychologist", "video game"}
	ctx := context.Background()
	var wg sync.WaitGroup
	added := make([][]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			for i := 0; i < writesPerWriter; i++ {
				node := fmt.Sprintf("n%d", rng.Intn(numNodes))
				var op Op
				switch rng.Intn(3) {
				case 0:
					op = Op{Op: "set_attr", ID: node, Attr: "type", Value: types[rng.Intn(len(types))]}
				case 1:
					op = Op{Op: "add_node", ID: fmt.Sprintf("w%d-%d", w, i), Label: "person",
						Attrs: map[string]any{"type": "artist"}}
					added[w] = append(added[w], op.ID)
				default:
					op = Op{Op: "add_edge", Src: node, Label: "create",
						Dst: fmt.Sprintf("n%d", rng.Intn(numNodes))}
				}
				if _, err := ent.Mutate(ctx, []Op{op}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every Mutate above returned, so every write is in the WAL. Crash:
	// snapshot the directory, then smear garbage over the copy's tail
	// (recovery must truncate it, not crash on it).
	crashDir := filepath.Join(base, "crash")
	copyTree(t, leaderDir, crashDir)
	segs, err := filepath.Glob(filepath.Join(crashDir, "kb", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in the crash copy: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rcat, err := NewCatalog(Config{MaxDelay: time.Millisecond, DataDir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	defer rcat.Close()
	names, err := rcat.Restore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "kb" {
		t.Fatalf("restored %v, want [kb]", names)
	}
	rent, err := rcat.Get("kb")
	if err != nil {
		t.Fatal(err)
	}
	rview := rent.CurrentView()

	// Serial oracle: a completely fresh engine over the live leader
	// graph — no shared caches, no recovered state.
	ent.mu.RLock()
	oracle, err := gedlib.New().Validate(ctx, ent.graph, sigma)
	version := ent.graph.Version()
	ent.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if rview.Version != version {
		t.Fatalf("recovered at version %d, leader at %d", rview.Version, version)
	}
	a, b := canonViolations(rview.Violations), canonViolations(oracle)
	if len(a) != len(b) {
		t.Fatalf("recovered %d violations, oracle %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation sets differ at %d: %s vs %s", i, a[i], b[i])
		}
	}

	// The restored entry is a full citizen: every name added before the
	// crash resolves, and new writes land.
	for w := range added {
		for _, name := range added[w] {
			if _, ok := rview.Names.Resolve(name); !ok {
				t.Fatalf("node %s added before the crash does not resolve after recovery", name)
			}
		}
	}
	if _, err := rent.Mutate(ctx, []Op{{Op: "set_attr", ID: "n0", Attr: "name", Value: "post-crash"}}); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerPropagation: a follower catalog over a leader's data
// directory serves reads that converge on the leader's writes, rejects
// every mutation with ErrReadOnly, reports replication stats, and picks
// up graphs created after it started following.
func TestFollowerPropagation(t *testing.T) {
	dir := t.TempDir()
	leader, lent := newTestEntry(t, Config{MaxDelay: time.Millisecond, DataDir: dir})

	fol, err := NewCatalog(Config{DataDir: dir, FollowPoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	if err := fol.Follow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !fol.IsFollower() {
		t.Fatal("IsFollower is false after Follow")
	}
	fent, err := fol.Get("g")
	if err != nil {
		t.Fatal(err)
	}

	// The recovered replica carries the leader's rules: the seeded
	// violation (an artist created a video game) is already visible.
	if vs := fent.CurrentView().Violations; len(vs) != 1 {
		t.Fatalf("follower sees %d violations before any writes, want 1", len(vs))
	}

	// Read-only, everywhere.
	if _, err := fent.Mutate(context.Background(), []Op{{Op: "set_attr", ID: "dev", Attr: "type", Value: "x"}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Mutate returned %v, want ErrReadOnly", err)
	}
	if _, err := fent.RegisterRules(context.Background(), "ged x on (a:b) { then a.c = 1 }"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower RegisterRules returned %v, want ErrReadOnly", err)
	}
	if _, err := fol.Create("other", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Create returned %v, want ErrReadOnly", err)
	}
	if err := fol.Delete("g"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Delete returned %v, want ErrReadOnly", err)
	}

	// A leader write propagates: the repair must reach the replica.
	res, err := lent.Mutate(context.Background(), []Op{{Op: "set_attr", ID: "dev", Attr: "type", Value: "programmer"}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := fent.CurrentView()
		if v.Version >= res.Version {
			if len(v.Violations) != 0 {
				t.Fatalf("follower at version %d still sees %d violations", v.Version, len(v.Violations))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at version %d, leader write at %d", v.Version, res.Version)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := fent.Stats()
	if !s.Follower || s.FollowerRecords == 0 {
		t.Fatalf("follower stats: %+v", s)
	}
	if s.FollowerLagNanos <= 0 {
		t.Fatalf("follower lag %d, want > 0", s.FollowerLagNanos)
	}

	// A graph created after Follow started appears via the rescan.
	if _, err := leader.Create("late", nil); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err := fol.Get("late"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never picked up the late-created graph")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStatszDurabilityShape pins the JSON wire shape of the durability
// and replication counters in /statsz.
func TestStatszDurabilityShape(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: dir})
	doJSON(t, "POST", ts.URL+"/graphs?name=g", []byte(`{"nodes": [{"id": "a", "label": "thing"}]}`), http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/graphs/g/mutate",
		[]byte(`{"ops":[{"op":"set_attr","id":"a","attr":"x","value":1}]}`), http.StatusOK)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		DataDir  string                       `json:"data_dir"`
		Follower bool                         `json:"follower"`
		Entries  []map[string]json.RawMessage `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.DataDir != dir {
		t.Fatalf("data_dir %q, want %q", raw.DataDir, dir)
	}
	if raw.Follower {
		t.Fatal("leader /statsz reports follower=true")
	}
	if len(raw.Entries) != 1 {
		t.Fatalf("%d entries, want 1", len(raw.Entries))
	}
	e := raw.Entries[0]
	for _, key := range []string{"durable", "wal_bytes", "wal_records", "checkpoint_version", "checkpoint_age_ops"} {
		if _, ok := e[key]; !ok {
			t.Errorf("/statsz entry missing %q: %v", key, e)
		}
	}
	var durable bool
	if err := json.Unmarshal(e["durable"], &durable); err != nil || !durable {
		t.Fatalf("durable = %s, want true", e["durable"])
	}
	var walRecords uint64
	if err := json.Unmarshal(e["wal_records"], &walRecords); err != nil || walRecords == 0 {
		t.Fatalf("wal_records = %s, want > 0", e["wal_records"])
	}

	// /metricsz is fed by the same persist handles; its WAL record
	// counter must agree with the /statsz JSON number.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	want := fmt.Sprintf("ged_wal_records_total{graph=%q} %d", "g", walRecords)
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metricsz missing %q;\n%s", want, body)
	}
}
