package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// PromoteResult reports a completed follower-to-leader promotion.
type PromoteResult struct {
	// Promoted lists the graphs now accepting writes, sorted.
	Promoted []string `json:"promoted"`
	// Epoch is the highest leadership epoch now held.
	Epoch uint64 `json:"epoch"`
	// RTONanos is the wall time of the whole promotion — write
	// unavailability actually paid, tail stop through batchers accepting.
	RTONanos int64 `json:"rto_ns"`
}

// Promote turns a follower catalog into the leader of its data
// directory. Per graph: the tail loop is stopped, the WAL is drained to
// its end and the leadership epoch bumped behind a crash-atomic fence
// bound (persist.Store.Promote — after which the old leader's appends
// fail their fence check before being acked), the entry is reset onto
// the drained state, and a write batcher starts. Graphs whose promotion
// fails individually degrade and are skipped — the next Promote call
// retries exactly those — while the rest come up writable; the first
// such error is returned alongside the successes.
//
// Promoting a catalog with no follower graphs fails with ErrNotFollower
// (an already-promoted catalog is not re-promoted, so the call is
// idempotent but not silently so).
func (c *Catalog) Promote(ctx context.Context) (PromoteResult, error) {
	var res PromoteResult
	if c.store == nil {
		return res, errors.New("serve: Promote requires Config.DataDir")
	}
	c.roleMu.Lock()
	defer c.roleMu.Unlock()
	start := time.Now()
	// Stop the tails first: promotion drains each WAL to its end and
	// resets the entries, and a live tail loop would race both.
	if c.followCancel != nil {
		c.followCancel()
		c.followWG.Wait()
		c.followCancel = nil
	}
	c.mu.RLock()
	ents := make([]*GraphEntry, 0, len(c.entries))
	for _, e := range c.entries {
		if e.b.Load() == nil { // batcher-less: still a follower entry
			ents = append(ents, e)
		}
	}
	c.mu.RUnlock()
	if len(ents) == 0 && !c.follower.Load() {
		return res, ErrNotFollower
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].name < ents[j].name })
	var firstErr error
	for _, ent := range ents {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		gs, rec, err := c.store.Promote(ent.name)
		if err == nil {
			if rerr := ent.resetTo(rec.State); rerr != nil {
				_ = gs.Close()
				err = rerr
			}
		}
		if err != nil {
			ent.degrade(fmt.Errorf("promote: %w", err))
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: promote %q: %w", ent.name, err)
			}
			continue
		}
		ent.ps.Store(gs)
		ent.follower.Store(false)
		ent.folFailures.Store(0)
		ent.leaderEpoch.Store(gs.Epoch())
		ent.setHealthy()
		nb := newBatcher(ent, c.cfg)
		ent.b.Store(nb)
		go nb.run()
		if gs.Epoch() > res.Epoch {
			res.Epoch = gs.Epoch()
		}
		res.Promoted = append(res.Promoted, ent.name)
	}
	// The catalog is a leader from here on: rescans stop (no rescanLoop
	// is running anymore) and Create/Delete/writes are accepted.
	c.follower.Store(false)
	rto := time.Since(start)
	res.RTONanos = rto.Nanoseconds()
	for _, name := range res.Promoted {
		if ent, err := c.Get(name); err == nil {
			ent.promotionNanos.Store(res.RTONanos)
		}
	}
	if len(res.Promoted) > 0 {
		c.mPromotions.Inc()
		c.hPromotion.Observe(rto)
	}
	return res, firstErr
}

// Demote reboots the catalog as a follower of whatever leadership epoch
// now owns its data directory: every entry drains its pending writes
// and closes (a fenced entry's parting checkpoint is refused by the
// persist-level fence, which is the point — it must not overwrite the
// new leader's lineage), then the store is re-recovered read-only with
// tail loops running, exactly as Follow at boot. The deposed leader
// thereby rejoins the new epoch instead of serving its stale last view
// forever. Demoting a catalog that is already a follower is a no-op.
// ctx governs the new tails' lifetime, not just the call.
func (c *Catalog) Demote(ctx context.Context) error {
	if c.store == nil {
		return errors.New("serve: Demote requires Config.DataDir")
	}
	c.roleMu.Lock()
	defer c.roleMu.Unlock()
	if c.follower.Load() {
		return nil
	}
	c.mu.Lock()
	ents := make([]*GraphEntry, 0, len(c.entries))
	for _, e := range c.entries {
		ents = append(ents, e)
	}
	c.entries = make(map[string]*GraphEntry)
	c.mu.Unlock()
	for _, e := range ents {
		e.close(false)
		c.reg.RemoveLabeled("graph", e.name)
	}
	return c.Follow(ctx)
}
