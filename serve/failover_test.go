package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestPromoteFailoverAdoptsAckedWrites is the in-process failover
// lifecycle: a leader acks writes, a follower is promoted, and (a) no
// acked write is lost, (b) the promoted catalog accepts writes at epoch
// 1, (c) the deposed leader's next write is fenced before being acked,
// (d) the deposed leader demotes and converges on the new leader.
func TestPromoteFailoverAdoptsAckedWrites(t *testing.T) {
	dir := t.TempDir()
	leader, lent := newTestEntry(t, Config{MaxDelay: time.Millisecond, DataDir: dir})
	ctx := context.Background()

	// An acked (durable) repair on the old leader: the seeded violation
	// disappears, and promotion must carry that forward.
	res, err := lent.Mutate(ctx, []Op{{Op: "set_attr", ID: "dev", Attr: "type", Value: "programmer"}})
	if err != nil {
		t.Fatal(err)
	}

	fol, err := NewCatalog(Config{DataDir: dir, FollowPoll: 2 * time.Millisecond, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	if err := fol.Follow(ctx); err != nil {
		t.Fatal(err)
	}

	pres, err := fol.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Promoted) != 1 || pres.Promoted[0] != "g" {
		t.Fatalf("promoted %v, want [g]", pres.Promoted)
	}
	if pres.Epoch != 1 {
		t.Fatalf("promoted to epoch %d, want 1", pres.Epoch)
	}
	if pres.RTONanos <= 0 {
		t.Fatalf("rto %d, want > 0", pres.RTONanos)
	}
	if fol.IsFollower() || fol.Role() != "leader" {
		t.Fatalf("promoted catalog still reports follower (role %q)", fol.Role())
	}

	fent, err := fol.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	v := fent.CurrentView()
	if v.Version < res.Version {
		t.Fatalf("promoted leader at version %d, acked write at %d — acked write lost", v.Version, res.Version)
	}
	if len(v.Violations) != 0 {
		t.Fatalf("promoted leader sees %d violations, want 0 (the acked repair)", len(v.Violations))
	}
	if _, err := fent.Mutate(ctx, []Op{{Op: "add_node", ID: "post-promote", Label: "person"}}); err != nil {
		t.Fatalf("promoted leader rejects writes: %v", err)
	}
	st := fent.Stats()
	if st.Role != "leader" || st.LeaderEpoch != 1 || st.PromotionNanos <= 0 {
		t.Fatalf("promoted entry stats: role %q epoch %d promotion_ns %d", st.Role, st.LeaderEpoch, st.PromotionNanos)
	}

	// The deposed leader's next write fails the epoch fence before being
	// acked, flips the graph to fenced, and reads keep serving.
	if _, err := lent.Mutate(ctx, []Op{{Op: "set_attr", ID: "dev", Attr: "name", Value: "lost"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale leader Mutate returned %v, want ErrFenced", err)
	}
	if h, cause := lent.Health(); h != "fenced" || cause == nil {
		t.Fatalf("stale leader health %q (cause %v), want fenced", h, cause)
	}
	if lent.CurrentView() == nil {
		t.Fatal("fenced leader stopped serving reads")
	}
	// Fast-fail path: a second write is rejected before the batcher.
	if _, err := lent.Mutate(ctx, []Op{{Op: "set_attr", ID: "dev", Attr: "name", Value: "x"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced Mutate returned %v, want ErrFenced", err)
	}
	if _, err := lent.RegisterRules(ctx, "ged r on (a:person) { then a.ok = 1 }"); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced RegisterRules returned %v, want ErrFenced", err)
	}
	if st := lent.Stats(); st.Role != "fenced" || st.FencedAppends == 0 {
		t.Fatalf("fenced entry stats: role %q fenced_appends %d", st.Role, st.FencedAppends)
	}

	// The deposed leader reboots as a follower of the new epoch and
	// converges on its writes.
	if err := leader.Demote(ctx); err != nil {
		t.Fatal(err)
	}
	if !leader.IsFollower() {
		t.Fatal("demoted catalog does not report follower")
	}
	res2, err := fent.Mutate(ctx, []Op{{Op: "set_attr", ID: "game", Attr: "name", Value: "GB2"}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		dent, err := leader.Get("g")
		if err == nil {
			if dv := dent.CurrentView(); dv != nil && dv.Version >= res2.Version {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("demoted follower never converged on the new leader's write at version %d", res2.Version)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStaleLeaderRebootFenced: a leader crashes, a follower is promoted,
// and the old leader reboots asserting the epoch it last held
// (Config.AssumeEpoch). Its graphs must come up fenced at startup —
// read-only from the first request, not from the first failed write.
func TestStaleLeaderRebootFenced(t *testing.T) {
	dir := t.TempDir()
	newTestEntry(t, Config{MaxDelay: time.Millisecond, DataDir: dir})
	ctx := context.Background()

	fol, err := NewCatalog(Config{DataDir: dir, FollowPoll: 2 * time.Millisecond, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	if err := fol.Follow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Promote(ctx); err != nil {
		t.Fatal(err)
	}

	zero := uint64(0)
	reboot, err := NewCatalog(Config{
		DataDir: dir, MaxDelay: time.Millisecond,
		AssumeEpoch: &zero, ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reboot.Close)
	if _, err := reboot.Restore(ctx); err != nil {
		t.Fatal(err)
	}
	rent, err := reboot.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if h, cause := rent.Health(); h != "fenced" || cause == nil {
		t.Fatalf("rebooted stale leader health %q (cause %v), want fenced at startup", h, cause)
	}
	if _, err := rent.Mutate(ctx, []Op{{Op: "set_attr", ID: "dev", Attr: "name", Value: "x"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("rebooted stale leader Mutate returned %v, want ErrFenced", err)
	}
	if v := rent.CurrentView(); v == nil || len(v.Violations) != 1 {
		t.Fatalf("rebooted stale leader must still serve its recovered view (got %+v)", v)
	}
	// A probe must not resurrect it.
	if err := rent.Probe(ctx); err != nil {
		t.Fatalf("probe of a fenced entry: %v (want nil no-op)", err)
	}
	if h, _ := rent.Health(); h != "fenced" {
		t.Fatalf("probe cleared fenced state (health %q)", h)
	}
}

// postRaw posts body and returns the response (callers check status and
// headers — doJSON hides both on error paths).
func postRaw(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// checkRejection asserts a write rejection's status code and Retry-After
// header — the wire contract of the role/health distinction.
func checkRejection(t *testing.T, url string, body []byte, wantCode int, wantRetry string) {
	t.Helper()
	resp := postRaw(t, url, body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != wantRetry {
		t.Fatalf("POST %s: Retry-After %q, want %q", url, ra, wantRetry)
	}
}

// TestWriteRejectionStatuses pins the HTTP contract of the three write
// rejections: follower 403 + Retry-After 30 (wrong role — redirect to
// the live leader), degraded 503 + Retry-After 5 (right door, may heal
// shortly), fenced 503 + Retry-After 5 (deposed leader, sticky).
func TestWriteRejectionStatuses(t *testing.T) {
	dir := t.TempDir()
	ls, lts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: dir, ProbeInterval: time.Hour})
	doJSON(t, "POST", lts.URL+"/graphs?name=g", nil, http.StatusCreated)

	fsrv, fts := startServer(t, Config{DataDir: dir, FollowPoll: 2 * time.Millisecond})
	if err := fsrv.Follow(context.Background()); err != nil {
		t.Fatal(err)
	}

	mut := []byte(`{"ops":[{"op":"add_node","id":"n1","label":"x"}]}`)
	checkRejection(t, fts.URL+"/graphs/g/mutate", mut, http.StatusForbidden, "30")

	ent, err := ls.Catalog().Get("g")
	if err != nil {
		t.Fatal(err)
	}
	ent.degrade(errors.New("injected disk failure"))
	checkRejection(t, lts.URL+"/graphs/g/mutate", mut, http.StatusServiceUnavailable, "5")
	ent.setHealthy()

	ent.fence(errors.New("injected fence"))
	checkRejection(t, lts.URL+"/graphs/g/mutate", mut, http.StatusServiceUnavailable, "5")
	// Sticky: the operator re-enable path must NOT resurrect a fenced
	// graph the way it resurrects a degraded one.
	doJSON(t, "POST", lts.URL+"/graphs/g/enable", nil, http.StatusOK)
	checkRejection(t, lts.URL+"/graphs/g/mutate", mut, http.StatusServiceUnavailable, "5")

	// /healthz rolls the fenced graph up into the overall status.
	hz := doJSON(t, "GET", lts.URL+"/healthz", nil, http.StatusOK)
	if hz["status"] != "fenced" {
		t.Fatalf("/healthz status %v, want fenced", hz["status"])
	}
}

// TestPromoteDemoteHTTP drives the failover endpoints over real HTTP:
// /promote on a never-follower 409s, /promote on a follower returns the
// promoted graphs + epoch + RTO and flips /statsz role, the deposed
// leader's writes 503, and /demote reboots it as a follower that 403s.
func TestPromoteDemoteHTTP(t *testing.T) {
	dir := t.TempDir()
	_, lts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: dir})
	doJSON(t, "POST", lts.URL+"/graphs?name=g", nil, http.StatusCreated)
	mut := []byte(`{"ops":[{"op":"add_node","id":"n1","label":"x"}]}`)
	doJSON(t, "POST", lts.URL+"/graphs/g/mutate", mut, http.StatusOK)

	fsrv, fts := startServer(t, Config{DataDir: dir, FollowPoll: 2 * time.Millisecond, MaxDelay: time.Millisecond})
	if err := fsrv.Follow(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A leader that was never a follower has nothing to promote.
	doJSON(t, "POST", lts.URL+"/promote", nil, http.StatusConflict)

	res := doJSON(t, "POST", fts.URL+"/promote", nil, http.StatusOK)
	promoted, _ := res["promoted"].([]any)
	if len(promoted) != 1 || promoted[0] != "g" {
		t.Fatalf("/promote returned %v, want promoted [g]", res)
	}
	if res["epoch"] != float64(1) {
		t.Fatalf("/promote epoch %v, want 1", res["epoch"])
	}
	if rto, _ := res["rto_ns"].(float64); rto <= 0 {
		t.Fatalf("/promote rto_ns %v, want > 0", res["rto_ns"])
	}
	doJSON(t, "POST", fts.URL+"/graphs/g/mutate",
		[]byte(`{"ops":[{"op":"add_node","id":"n2","label":"x"}]}`), http.StatusOK)
	if stats := doJSON(t, "GET", fts.URL+"/statsz", nil, http.StatusOK); stats["role"] != "leader" {
		t.Fatalf("/statsz role %v after promotion, want leader", stats["role"])
	}

	// The deposed leader: first write fences (503), then /demote reboots
	// it as a follower whose writes 403. (A fresh node id so the op
	// survives in-memory application and actually reaches the WAL —
	// an op rejected before the append never consults the fence.)
	stale := []byte(`{"ops":[{"op":"add_node","id":"n3","label":"x"}]}`)
	checkRejection(t, lts.URL+"/graphs/g/mutate", stale, http.StatusServiceUnavailable, "5")
	if res := doJSON(t, "POST", lts.URL+"/demote", nil, http.StatusOK); res["role"] != "follower" {
		t.Fatalf("/demote role %v, want follower", res["role"])
	}
	doJSON(t, "POST", lts.URL+"/demote", nil, http.StatusOK) // idempotent
	checkRejection(t, lts.URL+"/graphs/g/mutate", mut, http.StatusForbidden, "30")
}
