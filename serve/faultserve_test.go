// End-to-end degraded-mode serving over real HTTP, driven by the
// fault-injection FS. Lives in package serve_test so it exercises the
// same import path an operator's tooling would (gedlib/serve +
// gedlib/bench); the internal fault package stays behind the bench
// re-exports.
package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"gedlib/bench"
	"gedlib/serve"
)

func postOps(t *testing.T, url string, ops string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/mutate", "application/json", bytes.NewReader([]byte(ops)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("bad JSON %q: %v", data, err)
		}
	}
	return out
}

// TestDegradedServingHTTP walks the documented failure lifecycle over
// the HTTP API: a healthy durable graph hits a sticky fsync fault, the
// graph degrades (writes 503 + Retry-After, reads keep serving, health
// surfaces everywhere), the operator enable path fails while the disk
// is still broken, and once the disk heals /enable brings the graph
// back in one round trip.
func TestDegradedServingHTTP(t *testing.T) {
	ffs := bench.NewFaultFS(1, nil)
	s, err := serve.NewServer(serve.Config{
		DataDir:       t.TempDir(),
		FS:            ffs,
		MaxDelay:      time.Millisecond,
		ProbeInterval: time.Hour, // keep the auto-probe out of the assertions
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	g := ts.URL + "/graphs/g"

	if resp, err := http.Post(ts.URL+"/graphs?name=g", "application/json", nil); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v status=%v", err, resp.Status)
	}
	if resp := postOps(t, g, `{"ops":[{"op":"add_node","id":"a","label":"person"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy mutate: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// The disk starts eating fsyncs — every sync (WAL group commits and
	// checkpoint temp files alike) now fails. Fsyncgate rule: a failed
	// fsync is never retried, so the very next group commit degrades.
	ffs.Inject(bench.FaultRule{Kind: "eio", Op: bench.OpSync, Err: syscall.EIO})

	if resp := postOps(t, g, `{"ops":[{"op":"add_node","id":"b","label":"person"}]}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("mutate into sync fault: status %d, want 500", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := postOps(t, g, `{"ops":[{"op":"add_node","id":"c","label":"person"}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate while degraded: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	resp.Body.Close()

	// Health surfaces the degradation with its cause.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, hz)
	if body["status"] != "degraded" {
		t.Fatalf("healthz status %v, want degraded", body["status"])
	}
	gh := body["graphs"].(map[string]any)["g"].(map[string]any)
	if gh["health"] != "degraded" || gh["error"] == nil || gh["error"] == "" {
		t.Fatalf("healthz graph entry %v, want degraded with cause", gh)
	}

	// Reads keep serving the last published view.
	vr, err := http.Get(g + "/violations")
	if err != nil || vr.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded: %v status=%v", err, vr.Status)
	}
	vr.Body.Close()

	// Operator enable on a still-broken disk: the probe's heal
	// checkpoint can't fsync either, so the graph stays degraded.
	er, err := http.Post(g+"/enable", "application/json", nil)
	if err != nil || er.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enable on broken disk: %v status=%v, want 503", err, er.Status)
	}
	er.Body.Close()

	// The disk heals; /enable probes recovery and re-opens writes.
	ffs.Heal()
	er, err = http.Post(g+"/enable", "application/json", nil)
	if err != nil || er.StatusCode != http.StatusOK {
		t.Fatalf("enable after heal: %v status=%v", err, er.Status)
	}
	if body := decodeBody(t, er); body["health"] != "ok" {
		t.Fatalf("enable reported health %v, want ok", body["health"])
	}
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, hz); body["status"] != "ok" {
		t.Fatalf("healthz after heal: %v, want ok", body["status"])
	}
	if resp := postOps(t, g, `{"ops":[{"op":"add_node","id":"d","label":"person"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate after heal: status %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// The degraded episode is visible in stats.
	sr, err := http.Get(g + "/stats")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v status=%v", err, sr.Status)
	}
	stats := decodeBody(t, sr)
	if stats["health"] != "ok" {
		t.Fatalf("stats health %v, want ok", stats["health"])
	}
	if r, ok := stats["recoveries"].(float64); !ok || r < 1 {
		t.Fatalf("stats recoveries %v, want >= 1", stats["recoveries"])
	}
}
