package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"gedlib"
)

// Server is the HTTP front of a catalog: JSON handlers with per-request
// contexts, admission control, and a /statsz endpoint. Build one with
// NewServer and mount Handler() on any http.Server; Close flushes every
// pending write.
type Server struct {
	cat     *Catalog
	adm     *admission
	handler http.Handler
}

// NewServer returns a server over a fresh catalog configured by cfg.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cat, err := NewCatalog(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cat: cat, adm: newAdmission(cfg.MaxInFlight, cat.reg)}

	api := http.NewServeMux()
	api.HandleFunc("GET /graphs", s.handleList)
	api.HandleFunc("POST /graphs", s.handleCreate)
	api.HandleFunc("DELETE /graphs/{name}", s.handleDelete)
	api.HandleFunc("POST /graphs/{name}/rules", s.handleRules)
	api.HandleFunc("POST /graphs/{name}/mutate", s.handleMutate)
	api.HandleFunc("GET /graphs/{name}/violations", s.handleViolations)
	api.HandleFunc("POST /graphs/{name}/validate", s.handleValidate)
	api.HandleFunc("POST /graphs/{name}/chase", s.handleChase)
	api.HandleFunc("GET /graphs/{name}/stats", s.handleEntryStats)
	api.HandleFunc("POST /graphs/{name}/enable", s.handleEnable)

	// The observability endpoints — /healthz, /statsz, /metricsz,
	// /tracez, /versionz — bypass admission control: they must answer
	// even (especially) when the server is shedding load, or the
	// monitoring that explains an overload would be its first victim.
	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /statsz", s.handleStatsz)
	root.HandleFunc("GET /metricsz", s.handleMetricsz)
	root.HandleFunc("GET /tracez", s.handleTracez)
	root.HandleFunc("GET /versionz", s.handleVersionz)
	// The role transitions also bypass admission: a failover is exactly
	// when the server may be drowning in rejected writes, and the
	// operator's /promote must not queue behind them.
	root.HandleFunc("POST /promote", s.handlePromote)
	root.HandleFunc("POST /demote", s.handleDemote)
	root.Handle("/", s.adm.wrap(withTimeout(cfg.RequestTimeout, api)))
	s.handler = root
	return s, nil
}

// Restore re-adopts every graph persisted under the configured data
// directory; see Catalog.Restore.
func (s *Server) Restore(ctx context.Context) ([]string, error) { return s.cat.Restore(ctx) }

// Follow turns the server into a read-only replica of the configured
// data directory; see Catalog.Follow.
func (s *Server) Follow(ctx context.Context) error { return s.cat.Follow(ctx) }

// Catalog exposes the server's catalog (the daemon preloads through
// it; tests inspect it).
func (s *Server) Catalog() *Catalog { return s.cat }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close flushes and stops every graph's batcher.
func (s *Server) Close() { s.cat.Close() }

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// fail maps catalog/batcher errors onto status codes.
//
// Write rejections draw a deliberate distinction:
//
//   - ErrReadOnly → 403 + Retry-After 30. The graph is a follower
//     replica: the request is well-formed but aimed at the wrong role,
//     and retrying HERE only helps once this process is promoted —
//     clients should redirect to the leader, which is alive and
//     accepting (that is why a follower exists). The long Retry-After
//     says "wrong door", not "come right back".
//   - ErrDegraded → 503 + Retry-After 5. The graph is the right door
//     but its disk is failing; the auto-probe may heal it any moment,
//     so a short retry against the same endpoint is sensible.
//   - ErrFenced → 503 + Retry-After 5. A deposed leader: a promoted
//     follower owns the log now. Retrying reaches the new leader as
//     soon as the client's routing catches up (or this process demotes
//     and 403s like any follower).
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrExists), errors.Is(err, ErrNotFollower):
		httpError(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrTooManyOps):
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.Is(err, ErrReadOnly):
		w.Header().Set("Retry-After", "30")
		httpError(w, http.StatusForbidden, err.Error())
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrFenced):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrFlush):
		httpError(w, http.StatusInternalServerError, err.Error())
	case gedlib.IsCancellation(err):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*GraphEntry, bool) {
	ent, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		fail(w, err)
		return nil, false
	}
	return ent, true
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		return nil, false
	}
	return data, true
}

func withTimeout(d time.Duration, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func queryInt(r *http.Request, key string, def int) int {
	if s := r.URL.Query().Get(key); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// violationJSON renders one violation with wire-format node ids.
type violationJSON struct {
	Rule    string            `json:"rule"`
	Match   map[string]string `json:"match"`
	Literal string            `json:"literal"`
}

func renderViolations(view *View, vs []gedlib.Violation) []violationJSON {
	out := make([]violationJSON, len(vs))
	for i, v := range vs {
		m := make(map[string]string, len(v.Match))
		for x, id := range v.Match {
			m[string(x)] = view.Names.NameOf(id)
		}
		out[i] = violationJSON{Rule: v.GED.Name, Match: m, Literal: v.Literal.String()}
	}
	return out
}

// ---- handlers ----

// handleHealthz reports per-graph serving health. The overall status is
// "ok" unless any graph is degraded; the response stays 200 either way
// (the process is up and serving reads — load balancers that should
// drain on degradation match on the body's status field).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	graphs := map[string]any{}
	for _, name := range s.cat.Names() {
		ent, err := s.cat.Get(name)
		if err != nil {
			continue
		}
		h, cause := ent.Health()
		g := map[string]any{"health": h}
		if cause != nil {
			g["error"] = cause.Error()
		}
		if st := ent.Stats(); st.Role != "" {
			g["role"] = st.Role
			if st.LeaderEpoch != 0 {
				g["leader_epoch"] = st.LeaderEpoch
			}
		}
		graphs[name] = g
		// Fenced outranks degraded in the rollup: it never self-heals,
		// so it is the state an operator must act on first.
		if h == "degraded" && status == "ok" {
			status = "degraded"
		}
		if h == "fenced" {
			status = "fenced"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status, "role": s.cat.Role(), "graphs": graphs,
	})
}

// handlePromote turns a follower into the leader: tails stop, every
// graph's WAL is drained to its end behind a freshly fenced epoch, and
// write batchers start. The response carries the graphs promoted, the
// epoch now held, and the measured promotion wall time (the RTO).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	res, err := s.cat.Promote(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDemote reboots the catalog as a follower of whatever epoch now
// owns the data directory — the recovery path for a fenced (deposed)
// leader. The new tails outlive the request (context.Background()).
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	if err := s.cat.Demote(context.Background()); err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"role": s.cat.Role()})
}

// handleEnable is the operator re-enable path for a degraded graph: it
// probes recovery immediately (heal checkpoint + republish) instead of
// waiting out the auto-probe backoff. Succeeds trivially on a healthy
// graph.
func (s *Server) handleEnable(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	if err := ent.Probe(r.Context()); err != nil {
		fail(w, err)
		return
	}
	h, _ := ent.Health()
	writeJSON(w, http.StatusOK, map[string]string{"name": ent.Name(), "health": h})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	entries := s.cat.Stats()
	writeJSON(w, http.StatusOK, ServerStats{
		Graphs:             len(entries),
		EngineCachedGraphs: s.cat.Engine().CachedGraphs(),
		InFlight:           s.adm.inFlight(),
		Admitted:           s.adm.admitted.Value(),
		RejectedRequests:   s.adm.rejected.Value(),
		DataDir:            s.cat.DataDir(),
		Follower:           s.cat.IsFollower(),
		Role:               s.cat.Role(),
		Entries:            entries,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.cat.Names()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	body, ok := readBody(w, r, 64<<20)
	if !ok {
		return
	}
	var graphJSON []byte
	if len(body) > 0 {
		graphJSON = body
	}
	ent, err := s.cat.Create(name, graphJSON)
	if err != nil {
		fail(w, err)
		return
	}
	view := ent.CurrentView()
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":  ent.Name(),
		"nodes": view.Snap.NumNodes(),
		"edges": view.Snap.NumEdges(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.cat.Delete(r.PathValue("name")); err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	body, ok := readBody(w, r, 4<<20)
	if !ok {
		return
	}
	view, err := ent.RegisterRules(r.Context(), string(body))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rules":      len(view.Rules),
		"violations": len(view.Violations),
		"epoch":      view.Epoch,
	})
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	body, ok := readBody(w, r, 4<<20)
	if !ok {
		return
	}
	var req struct {
		Ops []Op `json:"ops"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad mutate body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "no ops")
		return
	}
	res, err := ent.Mutate(r.Context(), req.Ops)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	view := ent.CurrentView()
	vs := view.Violations
	total := len(vs)
	offset := queryInt(r, "offset", 0)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	vs = vs[offset:]
	if limit := queryInt(r, "limit", 100); limit >= 0 && len(vs) > limit {
		vs = vs[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":      total,
		"epoch":      view.Epoch,
		"version":    view.Version,
		"violations": renderViolations(view, vs),
	})
}

// handleValidate re-validates the neighborhoods of the requested nodes
// against the latest view — the "is this region clean right now" read.
// With no nodes it reports whether the whole graph currently satisfies
// its rules (from the maintained set, O(1)).
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	body, ok := readBody(w, r, 1<<20)
	if !ok {
		return
	}
	var req struct {
		Nodes []string `json:"nodes"`
		Limit int      `json:"limit"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad validate body: "+err.Error())
			return
		}
	}
	view := ent.CurrentView()
	if len(req.Nodes) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{
			"satisfies": len(view.Violations) == 0,
			"epoch":     view.Epoch,
		})
		return
	}
	ids := make([]gedlib.NodeID, 0, len(req.Nodes))
	for _, n := range req.Nodes {
		id, ok := view.Names.Resolve(n)
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown node %q", n))
			return
		}
		ids = append(ids, id)
	}
	vs, err := view.Val.TouchingCtx(r.Context(), ids, req.Limit)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      view.Epoch,
		"count":      len(vs),
		"violations": renderViolations(view, vs),
	})
}

func (s *Server) handleChase(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	res, err := ent.Chase(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	out := map[string]any{
		"consistent": res.Consistent(),
		"steps":      len(res.Steps),
	}
	if res.Consistent() {
		m := res.Materialize()
		out["nodes"], out["edges"] = m.NumNodes(), m.NumEdges()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEntryStats(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.entry(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ent.Stats())
}

// handleMetricsz renders the catalog registry in the Prometheus text
// exposition format: flush pipeline stage histograms, WAL/checkpoint
// counters, engine and matcher profiles, shard frame traffic, per-graph
// health — everything the process observed, one scrape.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cat.reg.WritePrometheus(w)
}

// handleTracez serves the observer's recent-span ring as JSON, newest
// first. Query parameters filter: ?graph= and ?op= match exactly,
// ?min= (a Go duration, e.g. 5ms) keeps only spans at least that slow,
// ?limit= bounds the count (default 64). With the observer disabled it
// serves an empty list.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	graph, op := q.Get("graph"), q.Get("op")
	var min time.Duration
	if ms := q.Get("min"); ms != "" {
		d, err := time.ParseDuration(ms)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min duration: "+err.Error())
			return
		}
		min = d
	}
	limit := queryInt(r, "limit", 64)
	spans := s.cat.tracer().Recent(limit, func(sd *gedlib.SpanData) bool {
		if graph != "" && sd.Graph != graph {
			return false
		}
		if op != "" && sd.Op != op {
			return false
		}
		return sd.Dur >= min
	})
	if spans == nil {
		spans = []*gedlib.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(spans), "spans": spans})
}

// handleVersionz reports the build's identity (module version, VCS
// revision, Go toolchain) from the binary's embedded build info.
func (s *Server) handleVersionz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionInfo())
}
