package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Per-graph serving health. A degraded entry keeps serving reads from
// its last published view but rejects writes with ErrDegraded until the
// persist layer heals — either the auto-probe loop succeeds or an
// operator forces a probe via POST /graphs/{name}/enable. A fenced
// entry is a deposed leader: same read-only posture, but sticky — no
// probe can heal it, because the WAL now belongs to a newer leadership
// epoch; only rebooting as a follower (POST /demote) clears it.
const (
	healthOK int32 = iota
	healthDegraded
	healthFenced
)

// Health reports the entry's serving health: "ok", "degraded" (the
// persist layer is failing; reads only, with the causing error),
// "fenced" (a deposed leader; reads only, with the fencing error), or
// "readonly" (a healthy follower replica).
func (ent *GraphEntry) Health() (state string, cause error) {
	switch ent.health.Load() {
	case healthFenced:
		ent.healthMu.Lock()
		cause = ent.healthErr
		ent.healthMu.Unlock()
		return "fenced", cause
	case healthDegraded:
		ent.healthMu.Lock()
		cause = ent.healthErr
		ent.healthMu.Unlock()
		return "degraded", cause
	}
	if ent.follower.Load() {
		return "readonly", nil
	}
	return "ok", nil
}

// degrade marks the entry read-only because of cause and, on durable
// entries, starts the auto-probe recovery loop (at most one per entry).
// Safe to call with or without ent.mu held: health state lives behind
// its own leaf lock so the flush path, the follower tail, and Stats
// never contend on the entry lock for it.
func (ent *GraphEntry) degrade(cause error) {
	ent.healthMu.Lock()
	if ent.health.Load() == healthFenced {
		// Fenced outranks degraded: a deposed leader stays fenced no
		// matter what else its persist layer reports.
		ent.healthMu.Unlock()
		return
	}
	ent.healthErr = cause
	if ent.health.Swap(healthDegraded) == healthOK {
		ent.degradedSince = time.Now()
		ent.mDegraded.Inc()
	}
	start := ent.ps.Load() != nil && !ent.probing
	if start {
		ent.probing = true
	}
	ent.healthMu.Unlock()
	if start {
		go ent.probeLoop()
	}
}

// fence marks the entry a deposed leader: read-only because a newer
// leadership epoch owns its WAL. Unlike degrade it starts no probe loop
// — fencing is not a fault that heals; the only way out is rebooting
// the entry as a follower of the new epoch (Catalog.Demote).
func (ent *GraphEntry) fence(cause error) {
	ent.healthMu.Lock()
	ent.healthErr = cause
	if ent.health.Swap(healthFenced) != healthFenced {
		ent.mFenced.Inc()
	}
	ent.degradedSince = time.Time{}
	ent.healthMu.Unlock()
}

// setHealthy clears degraded state (counting the recovery if there was
// one to recover from). Fenced state is sticky: it never clears here —
// a probe or follower catch-up must not resurrect a deposed leader.
func (ent *GraphEntry) setHealthy() {
	ent.healthMu.Lock()
	if ent.health.Load() == healthFenced {
		ent.healthMu.Unlock()
		return
	}
	if ent.health.Swap(healthOK) == healthDegraded {
		ent.mRecoveries.Inc()
	}
	ent.healthErr = nil
	ent.degradedSince = time.Time{}
	ent.healthMu.Unlock()
}

// probeLoop retries recovery of a degraded durable entry with jittered
// exponential backoff until a probe succeeds, the entry closes, or the
// catalog shuts it down.
func (ent *GraphEntry) probeLoop() {
	defer func() {
		ent.healthMu.Lock()
		ent.probing = false
		ent.healthMu.Unlock()
	}()
	bo := newBackoff(ent.cat.cfg.ProbeInterval, 16*ent.cat.cfg.ProbeInterval)
	for {
		select {
		case <-ent.probeStop:
			return
		case <-time.After(bo.next()):
		}
		if err := ent.Probe(context.Background()); err == nil || errors.Is(err, ErrClosed) {
			return
		}
	}
}

// Probe attempts to recover a degraded entry right now: a full
// checkpoint rewrite re-anchors durability at the current in-memory
// state. That is deliberately NOT a retry of whatever failed — a failed
// fsync is never retried (the kernel may already have dropped the dirty
// pages, so a passing retry proves nothing), and any ops a failed flush
// applied in memory but never logged are rolled forward into the image.
// On success the entry publishes its current state and accepts writes
// again. A probe of a healthy entry — or of a fenced one, which no
// probe may resurrect — is a no-op.
func (ent *GraphEntry) Probe(ctx context.Context) error {
	if ent.b.Load() == nil {
		return ErrReadOnly // followers heal through their tail loop
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return ErrClosed
	}
	if ent.health.Load() != healthDegraded {
		return nil
	}
	ent.mProbes.Inc()
	if ps := ent.ps.Load(); ps != nil {
		if err := ps.Checkpoint(ent.persistState()); err != nil {
			ent.healthMu.Lock()
			ent.healthErr = err
			ent.healthMu.Unlock()
			return fmt.Errorf("%w: probe: %v", ErrDegraded, err)
		}
	}
	// The checkpoint (or, in-memory, nothing) now agrees with the graph;
	// publish so reads catch up with any never-published applied suffix.
	if err := ent.refreshLocked(ctx); err != nil {
		return err
	}
	ent.setHealthy()
	return nil
}

// backoff is a jittered exponential backoff: each next() doubles the
// wait (capped at max) and smears it ±25% so a fleet of retriers
// hitting the same failing store does not hammer it in lockstep.
type backoff struct {
	base, max, cur time.Duration
}

func newBackoff(base, max time.Duration) *backoff {
	return &backoff{base: base, max: max}
}

func (b *backoff) next() time.Duration {
	if b.cur == 0 {
		b.cur = b.base
	} else if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	d := b.cur
	return d + time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
}

func (b *backoff) reset() { b.cur = 0 }

// jitter smears a fixed interval ±25%, for periodic loops (the follower
// rescan) that would otherwise tick in fleet-wide lockstep.
func jitter(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
}
