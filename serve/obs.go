package serve

import (
	"gedlib"
	"gedlib/internal/obs"
)

// Observability wiring. The catalog owns one metrics registry for its
// whole lifetime; the serving layer's own counters (the numbers behind
// /statsz: flushes, reads, admission, health) always live there. The
// *added* pipeline instrumentation — engine/persist/matcher metrics,
// trace spans, per-stage flush histograms — reports through an
// Observer sharing that registry, and Config.DisableObserver removes
// exactly that layer: the observer (and its registry view) goes nil,
// every added handle becomes a no-op, and the baseline counters keep
// working. /metricsz renders the registry; /tracez serves the
// observer's recent-span ring.

// Observer exposes the catalog's observer; nil when
// Config.DisableObserver was set.
func (c *Catalog) Observer() *gedlib.Observer { return c.obs }

// pipelineReg is the registry the added instrumentation reports into:
// the shared registry normally, nil (no-op handles) when the observer
// is disabled.
func (c *Catalog) pipelineReg() *obs.Registry { return c.obs.Registry() }

// tracer is the span sink; nil (no-op spans) when the observer is
// disabled.
func (c *Catalog) tracer() *obs.Tracer { return c.obs.Tracer() }

// Flush pipeline stage names, in execution order. Each flush records
// one observation per stage into ged_serve_flush_stage_seconds and the
// same timings onto its trace span.
const (
	stageQueueWait = "queue_wait"
	stageWALAppend = "wal_append"
	stageFsync     = "fsync"
	stageApply     = "apply"
	stagePublish   = "publish"
)

// initMetrics resolves the entry's always-on serving counters from the
// catalog registry and its per-stage flush histograms from the
// pipeline registry (no-ops when the observer is disabled). Called
// once, before the entry is published to the catalog map.
func (ent *GraphEntry) initMetrics() {
	reg := ent.cat.reg
	n := ent.name
	ent.mReads = reg.Counter("ged_serve_reads_total",
		"published views loaded by the read path", "graph", n)
	ent.mWALRetries = reg.Counter("ged_wal_retries_total",
		"transient WAL appends retried inside flushes", "graph", n)
	ent.mProbes = reg.Counter("ged_serve_probes_total",
		"recovery probes attempted on a degraded graph", "graph", n)
	ent.mRecoveries = reg.Counter("ged_serve_recovered_total",
		"degraded-to-ok health transitions", "graph", n)
	ent.mDegraded = reg.Counter("ged_serve_degraded_total",
		"ok-to-degraded health transitions", "graph", n)
	ent.mFenced = reg.Counter("ged_serve_fenced_total",
		"transitions into fenced (deposed-leader) state", "graph", n)
	ent.mFencedAppends = reg.Counter("ged_fenced_appends_total",
		"WAL appends and syncs refused by the leadership-epoch fence", "graph", n)
	reg.GaugeFunc("ged_serve_graph_health",
		"per-graph serving health: 0 ok, 1 degraded, 2 readonly, 3 fenced",
		func() float64 {
			switch {
			case ent.health.Load() == healthFenced:
				return 3
			case ent.health.Load() == healthDegraded:
				return 1
			case ent.follower.Load():
				return 2
			}
			return 0
		}, "graph", n)
	reg.GaugeFunc("ged_serve_role",
		"per-graph role: 0 leader, 1 follower, 2 fenced",
		func() float64 {
			switch {
			case ent.health.Load() == healthFenced:
				return 2
			case ent.follower.Load():
				return 1
			}
			return 0
		}, "graph", n)
	reg.GaugeFunc("ged_leader_epoch",
		"leadership epoch the graph's WAL handle writes under",
		func() float64 { return float64(ent.leaderEpoch.Load()) }, "graph", n)

	preg := ent.cat.pipelineReg()
	const name, help = "ged_serve_flush_stage_seconds", "per-stage duration of the write flush pipeline"
	ent.stQueue = preg.Histogram(name, help, "graph", n, "stage", stageQueueWait)
	ent.stWAL = preg.Histogram(name, help, "graph", n, "stage", stageWALAppend)
	ent.stFsync = preg.Histogram(name, help, "graph", n, "stage", stageFsync)
	ent.stApply = preg.Histogram(name, help, "graph", n, "stage", stageApply)
	ent.stPublish = preg.Histogram(name, help, "graph", n, "stage", stagePublish)
}

// initFollowerMetrics adds the replication series a follower entry
// maintains; leaders never expose them. Called after ent.follower is
// set, before the tail loop starts.
func (ent *GraphEntry) initFollowerMetrics() {
	reg := ent.cat.reg
	ent.mFolRecords = reg.Counter("ged_follower_records_total",
		"WAL records applied by this replica", "graph", ent.name)
	reg.GaugeFunc("ged_follower_lag_seconds",
		"staleness of the last applied record (now minus its append time)",
		func() float64 { return float64(ent.folLag.Load()) / 1e9 },
		"graph", ent.name)
}
