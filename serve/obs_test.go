package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"gedlib"
)

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// loadAndChurn creates graph g from the testdata KB, registers the
// testdata rules, and pushes one mutation through the flush pipeline.
func loadAndChurn(t *testing.T, ts string) {
	t.Helper()
	kb, err := os.ReadFile("../testdata/kb.json")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := os.ReadFile("../testdata/rules.ged")
	if err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts+"/graphs?name=g", kb, http.StatusCreated)
	doJSON(t, "POST", ts+"/graphs/g/rules", rules, http.StatusOK)
	doJSON(t, "POST", ts+"/graphs/g/mutate",
		[]byte(`{"ops":[{"op":"set_attr","id":"gibson","attr":"seen","value":1}]}`), http.StatusOK)
	doJSON(t, "GET", ts+"/graphs/g/violations", nil, http.StatusOK)
}

// TestMetricszContract asserts the exposition covers every layer the
// observer is wired through: flush pipeline stages, WAL durability,
// engine timings, matcher profiles, admission, and per-graph health.
func TestMetricszContract(t *testing.T) {
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: t.TempDir()})
	loadAndChurn(t, ts.URL)

	body := fetchText(t, ts.URL+"/metricsz")
	for _, stage := range []string{stageQueueWait, stageWALAppend, stageFsync, stageApply, stagePublish} {
		want := `ged_serve_flush_stage_seconds_count{graph="g",stage="` + stage + `"}`
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing flush stage series %q", want)
		}
	}
	for _, name := range []string{
		"ged_serve_flushes_total{graph=\"g\"}",
		"ged_serve_reads_total{graph=\"g\"}",
		"ged_serve_graph_health{graph=\"g\"} 0",
		"ged_serve_requests_admitted_total",
		"ged_serve_inflight_requests",
		"ged_wal_records_total{graph=\"g\"}",
		"ged_wal_bytes_total{graph=\"g\"}",
		"ged_wal_fsync_seconds_count{graph=\"g\"}",
		"ged_checkpoints_total{graph=\"g\"}",
		"ged_engine_apply_seconds_count",
		"ged_engine_snapshot_cache_total",
		"ged_match_candidates_total",
		"ged_match_plan_info",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metricsz missing %q", name)
		}
	}

	// Deleting the graph retires every series labeled with it.
	doJSON(t, "DELETE", ts.URL+"/graphs/g", nil, http.StatusOK)
	body = fetchText(t, ts.URL+"/metricsz")
	if strings.Contains(body, `graph="g"`) {
		t.Errorf("per-graph series survived delete:\n%s", body)
	}
}

// TestTracezFlushSpans asserts flushes leave spans in the ring with the
// pipeline stages attached, and that the query filters narrow them.
func TestTracezFlushSpans(t *testing.T) {
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: t.TempDir()})
	loadAndChurn(t, ts.URL)

	var out struct {
		Count int                `json:"count"`
		Spans []*gedlib.SpanData `json:"spans"`
	}
	resp := fetchText(t, ts.URL+"/tracez?graph=g&op=flush")
	if err := json.Unmarshal([]byte(resp), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count == 0 {
		t.Fatal("no flush spans in /tracez after a mutate")
	}
	sp := out.Spans[0]
	if sp.Graph != "g" || sp.Op != "flush" {
		t.Fatalf("filter leaked: got span %+v", sp)
	}
	stages := map[string]bool{}
	for _, st := range sp.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{stageQueueWait, stageWALAppend, stageFsync, stageApply, stagePublish} {
		if !stages[want] {
			t.Errorf("flush span missing stage %q: %v", want, sp.Stages)
		}
	}

	// An op filter that matches nothing yields an empty (non-null) list.
	resp = fetchText(t, ts.URL+"/tracez?op=nosuch")
	if err := json.Unmarshal([]byte(resp), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 || out.Spans == nil {
		t.Fatalf("want empty span list, got %s", resp)
	}
	// A min filter beyond any real duration drops everything.
	resp = fetchText(t, ts.URL+"/tracez?min=1h")
	if err := json.Unmarshal([]byte(resp), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 {
		t.Fatalf("min=1h kept %d spans", out.Count)
	}
}

// TestDisableObserver asserts the bench baseline switch removes exactly
// the added pipeline instrumentation: serving counters stay, stage
// histograms and engine/persist metrics disappear, the span ring is
// empty — and /statsz still works.
func TestDisableObserver(t *testing.T) {
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond, DataDir: t.TempDir(), DisableObserver: true})
	loadAndChurn(t, ts.URL)

	body := fetchText(t, ts.URL+"/metricsz")
	for _, want := range []string{
		"ged_serve_flushes_total{graph=\"g\"}",
		"ged_serve_reads_total{graph=\"g\"}",
		"ged_serve_graph_health{graph=\"g\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("baseline counter %q missing with observer disabled", want)
		}
	}
	for _, gone := range []string{
		"ged_serve_flush_stage_seconds",
		"ged_engine_",
		"ged_wal_records_total",
		"ged_match_",
	} {
		if strings.Contains(body, gone) {
			t.Errorf("pipeline metric %q present with observer disabled", gone)
		}
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(fetchText(t, ts.URL+"/tracez")), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 {
		t.Fatalf("tracez holds %d spans with observer disabled", out.Count)
	}
	stats := doJSON(t, "GET", ts.URL+"/statsz", nil, http.StatusOK)
	if n, _ := stats["graphs"].(float64); n != 1 {
		t.Fatalf("/statsz graphs = %v, want 1", stats["graphs"])
	}
}

// TestSlowOpLog asserts the slow-op hook fires for flushes beyond the
// threshold and carries the span.
func TestSlowOpLog(t *testing.T) {
	var mu struct {
		ch chan *gedlib.SpanData
	}
	mu.ch = make(chan *gedlib.SpanData, 16)
	s, err := NewServer(Config{
		MaxDelay: time.Millisecond,
		SlowOp:   time.Nanosecond, // everything is slow
		OnSlowOp: func(sd *gedlib.SpanData) {
			select {
			case mu.ch <- sd:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ent, err := s.Catalog().Create("g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ent.Mutate(t.Context(), []Op{{Op: "add_node", ID: "a", Label: "thing"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case sd := <-mu.ch:
		if sd.Op != "flush" || sd.Graph != "g" {
			t.Fatalf("slow-op span = %+v", sd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow-op hook never fired")
	}
}

// TestVersionz asserts the build-identity endpoint answers with the
// embedded build info.
func TestVersionz(t *testing.T) {
	_, ts := startServer(t, Config{})
	out := doJSON(t, "GET", ts.URL+"/versionz", nil, http.StatusOK)
	if mod, _ := out["module"].(string); mod == "" {
		t.Fatalf("versionz missing module: %v", out)
	}
	if goVer, _ := out["go"].(string); !strings.HasPrefix(goVer, "go") {
		t.Fatalf("versionz go = %v", out["go"])
	}
}
