package serve

import (
	"encoding/json"
	"fmt"
	"strconv"

	"gedlib"
)

// Op is one mutation of a write request, in the wire form the HTTP API
// accepts:
//
//	{"op": "add_node", "id": "acme", "label": "company", "attrs": {"name": "ACME"}}
//	{"op": "add_edge", "src": "gibson", "label": "create", "dst": "acme"}
//	{"op": "set_attr", "id": "gibson", "attr": "type", "value": "programmer"}
//
// Node ids are the graph's wire-format string ids (the ones its JSON
// load assigned, plus any added since); attribute values may be JSON
// strings, numbers or booleans, exactly as in the graph wire format.
type Op struct {
	Op    string         `json:"op"`
	ID    string         `json:"id,omitempty"`
	Label string         `json:"label,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Src   string         `json:"src,omitempty"`
	Dst   string         `json:"dst,omitempty"`
	Attr  string         `json:"attr,omitempty"`
	Value any            `json:"value,omitempty"`
}

// OpError reports one rejected op of a write request; the remaining
// ops of the request still apply.
type OpError struct {
	Index   int    `json:"op"`
	Message string `json:"error"`
}

// WriteResult is what a completed mutation request reports back.
type WriteResult struct {
	// Version and Epoch identify the published view that first contains
	// the request's ops.
	Version uint64 `json:"version"`
	Epoch   uint64 `json:"epoch"`
	// Applied counts the ops that applied; OpErrors describes the rest.
	Applied  int       `json:"applied"`
	OpErrors []OpError `json:"errors,omitempty"`
	// Err is a flush-level failure (cancellation of the maintained
	// validation), wrapped in ErrFlush; the HTTP layer surfaces it as
	// a 500.
	Err error `json:"-"`
}

// nameTable is the immutable two-way mapping between wire-format string
// node ids and NodeIDs. Views publish it alongside the snapshot, so the
// read path resolves and renders ids without locking; flushes that add
// nodes publish a successor table.
type nameTable struct {
	byName map[string]gedlib.NodeID
	byID   []string // dense, indexed by NodeID
}

func newNameTable(byName map[string]gedlib.NodeID) *nameTable {
	t := &nameTable{byName: byName}
	if t.byName == nil {
		t.byName = map[string]gedlib.NodeID{}
	}
	max := -1
	for _, id := range t.byName {
		if int(id) > max {
			max = int(id)
		}
	}
	t.byID = make([]string, max+1)
	for name, id := range t.byName {
		t.byID[id] = name
	}
	return t
}

// Resolve maps a wire id to a NodeID.
func (t *nameTable) Resolve(name string) (gedlib.NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// NameOf maps a NodeID back to its wire id; nodes materialized outside
// the wire format (e.g. by a chase) render positionally.
func (t *nameTable) NameOf(id gedlib.NodeID) string {
	if int(id) < len(t.byID) && t.byID[id] != "" {
		return t.byID[id]
	}
	return "#" + strconv.Itoa(int(id))
}

// Len reports how many named nodes the table holds.
func (t *nameTable) Len() int { return len(t.byName) }

// raw returns the wire id of a node, "" when it has none (the WAL and
// checkpoints persist the raw column; unnamed nodes stay unnamed).
func (t *nameTable) raw(id gedlib.NodeID) string {
	if int(id) < len(t.byID) {
		return t.byID[id]
	}
	return ""
}

// dense copies out the dense id→name column (what persist.State holds).
func (t *nameTable) dense() []string {
	return append([]string(nil), t.byID...)
}

// nameTableFromDense rebuilds a table from a persisted dense column.
func nameTableFromDense(names []string) *nameTable {
	t := &nameTable{
		byName: make(map[string]gedlib.NodeID, len(names)),
		byID:   append([]string(nil), names...),
	}
	for i, n := range names {
		if n != "" {
			t.byName[n] = gedlib.NodeID(i)
		}
	}
	return t
}

// nameBuilder lazily clones a nameTable on first added node, so
// attribute-only batches publish the predecessor table unchanged.
type nameBuilder struct {
	cur   *nameTable
	owned bool
}

func (b *nameBuilder) table() *nameTable { return b.cur }

func (b *nameBuilder) add(name string, id gedlib.NodeID) {
	if !b.owned {
		nt := &nameTable{
			byName: make(map[string]gedlib.NodeID, len(b.cur.byName)+1),
			byID:   append([]string(nil), b.cur.byID...),
		}
		for k, v := range b.cur.byName {
			nt.byName[k] = v
		}
		b.cur, b.owned = nt, true
	}
	b.cur.byName[name] = id
	for int(id) >= len(b.cur.byID) {
		b.cur.byID = append(b.cur.byID, "")
	}
	b.cur.byID[id] = name
}

// applyOp applies one op to the mutable graph, updating the name
// builder for added nodes. Called with the entry lock held by the
// flusher.
func applyOp(g *gedlib.Graph, nb *nameBuilder, op Op) error {
	switch op.Op {
	case "add_node":
		if op.ID == "" {
			return fmt.Errorf("add_node: missing id")
		}
		if _, dup := nb.table().Resolve(op.ID); dup {
			return fmt.Errorf("add_node: id %q already exists", op.ID)
		}
		if op.Label == "" {
			return fmt.Errorf("add_node: missing label")
		}
		attrs := make(map[gedlib.Attr]gedlib.Value, len(op.Attrs))
		for a, raw := range op.Attrs {
			v, err := jsonValue(raw)
			if err != nil {
				return fmt.Errorf("add_node: attr %q: %w", a, err)
			}
			attrs[gedlib.Attr(a)] = v
		}
		id := g.AddNodeAttrs(gedlib.Label(op.Label), attrs)
		nb.add(op.ID, id)
		return nil
	case "add_edge":
		src, ok := nb.table().Resolve(op.Src)
		if !ok {
			return fmt.Errorf("add_edge: unknown src %q", op.Src)
		}
		dst, ok := nb.table().Resolve(op.Dst)
		if !ok {
			return fmt.Errorf("add_edge: unknown dst %q", op.Dst)
		}
		if op.Label == "" {
			return fmt.Errorf("add_edge: missing label")
		}
		g.AddEdge(src, gedlib.Label(op.Label), dst)
		return nil
	case "set_attr":
		id, ok := nb.table().Resolve(op.ID)
		if !ok {
			return fmt.Errorf("set_attr: unknown id %q", op.ID)
		}
		if op.Attr == "" {
			return fmt.Errorf("set_attr: missing attr")
		}
		v, err := jsonValue(op.Value)
		if err != nil {
			return fmt.Errorf("set_attr: %w", err)
		}
		g.SetAttr(id, gedlib.Attr(op.Attr), v)
		return nil
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

// jsonValue converts a decoded JSON value to a graph attribute value,
// with the same convention as the graph wire format (booleans become
// 0/1 numbers).
func jsonValue(raw any) (gedlib.Value, error) {
	switch x := raw.(type) {
	case string:
		return gedlib.String(x), nil
	case float64:
		return gedlib.Number(x), nil
	case bool:
		return gedlib.Bool(x), nil
	case json.Number:
		f, err := x.Float64()
		if err != nil {
			return gedlib.Value{}, err
		}
		return gedlib.Number(f), nil
	case nil:
		return gedlib.Value{}, fmt.Errorf("missing value")
	default:
		return gedlib.Value{}, fmt.Errorf("unsupported value type %T", raw)
	}
}
