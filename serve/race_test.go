package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gedlib"
	"gedlib/workload"
)

// canonViolations renders a violation set order-independently (the
// bindings are sorted by variable so rule sets built programmatically
// and parsed from the DSL compare equal).
func canonViolations(vs []gedlib.Violation) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		parts := make([]string, 0, len(v.Match))
		for _, x := range v.GED.Pattern.Vars() {
			parts = append(parts, fmt.Sprintf("%s=%d", x, v.Match[x]))
		}
		sort.Strings(parts)
		out = append(out, v.GED.Name+":"+strings.Join(parts, ":"))
	}
	sort.Strings(out)
	return out
}

// TestConcurrentReadWriteOracle hammers one catalog entry with parallel
// mutators and parallel validators (run under -race in CI) and checks
// two equivalences:
//
//   - per view, online: the maintained violation set a reader is handed
//     must equal a from-scratch recomputation over that same immutable
//     snapshot (the incremental pipeline cannot drift from the direct
//     one);
//   - at quiesce, against a serial oracle: the final published set must
//     equal what a fresh engine computes over the final graph.
func TestConcurrentReadWriteOracle(t *testing.T) {
	g, _ := workload.KnowledgeBase(17, 50, 0.2)
	data, err := gedlib.MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCatalog(Config{MaxDelay: time.Millisecond, FlushOps: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ent, err := cat.Create("kb", data)
	if err != nil {
		t.Fatal(err)
	}
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	if _, err := ent.RegisterRules(context.Background(), gedlib.FormatRules(sigma)); err != nil {
		t.Fatal(err)
	}
	numNodes := ent.CurrentView().Snap.NumNodes()

	const (
		writers         = 4
		writesPerWriter = 25
		readers         = 4
		readsPerReader  = 40
		opsPerWrite     = 3
	)
	types := []string{"programmer", "psychologist", "video game"}
	var wg sync.WaitGroup
	var failed atomic.Bool
	ctx := context.Background()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < writesPerWriter; i++ {
				ops := make([]Op, 0, opsPerWrite)
				for k := 0; k < opsPerWrite; k++ {
					node := fmt.Sprintf("n%d", rng.Intn(numNodes))
					switch rng.Intn(3) {
					case 0:
						ops = append(ops, Op{Op: "set_attr", ID: node, Attr: "type", Value: types[rng.Intn(len(types))]})
					case 1:
						ops = append(ops, Op{Op: "set_attr", ID: node, Attr: "name", Value: fmt.Sprintf("renamed%d-%d", w, i)})
					default:
						dst := fmt.Sprintf("n%d", rng.Intn(numNodes))
						ops = append(ops, Op{Op: "add_edge", Src: node, Label: "create", Dst: dst})
					}
				}
				res, err := ent.Mutate(ctx, ops)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					failed.Store(true)
					return
				}
				if res.Applied != len(ops) {
					t.Errorf("writer %d: applied %d/%d ops: %v", w, res.Applied, len(ops), res.OpErrors)
					failed.Store(true)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < readsPerReader; i++ {
				view := ent.CurrentView()
				if view.Epoch < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d -> %d", r, lastEpoch, view.Epoch)
					failed.Store(true)
					return
				}
				lastEpoch = view.Epoch
				// Recompute over the same immutable snapshot: must match
				// the maintained set exactly.
				direct, err := view.Val.RunCtx(ctx, 0)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					failed.Store(true)
					return
				}
				a, b := canonViolations(view.Violations), canonViolations(direct)
				if len(a) != len(b) {
					t.Errorf("reader %d epoch %d: maintained %d violations, direct %d", r, view.Epoch, len(a), len(b))
					failed.Store(true)
					return
				}
				for j := range a {
					if a[j] != b[j] {
						t.Errorf("reader %d epoch %d: sets differ at %d: %s vs %s", r, view.Epoch, j, a[j], b[j])
						failed.Store(true)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	if failed.Load() {
		return
	}

	// Quiesce: drain any pending window, then compare the published set
	// against a completely fresh engine over the final graph (the
	// serial oracle — no shared caches, no incremental state).
	if _, err := ent.Mutate(ctx, []Op{{Op: "set_attr", ID: "n0", Attr: "name", Value: "quiesce"}}); err != nil {
		t.Fatal(err)
	}
	view := ent.CurrentView()
	ent.mu.RLock()
	oracle, err := gedlib.New().Validate(ctx, ent.graph, sigma)
	version := ent.graph.Version()
	ent.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if view.Version != version {
		t.Fatalf("final view at version %d, graph at %d", view.Version, version)
	}
	a, b := canonViolations(view.Violations), canonViolations(oracle)
	if len(a) != len(b) {
		t.Fatalf("final maintained set has %d violations, serial oracle %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("final sets differ at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestConcurrentMultiTenant: parallel traffic across several catalog
// entries sharing one engine (the LRU-bounded cache) stays correct per
// tenant.
func TestConcurrentMultiTenant(t *testing.T) {
	cat, err := NewCatalog(Config{MaxDelay: time.Millisecond, GraphCacheBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	sigma := gedlib.RuleSet{workload.PaperPhi1()}
	src := gedlib.FormatRules(sigma)

	const tenants = 5
	ents := make([]*GraphEntry, tenants)
	sizes := make([]int, tenants)
	for i := range ents {
		g, _ := workload.KnowledgeBase(int64(20+i), 25, 0.2)
		data, err := gedlib.MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		ent, err := cat.Create(fmt.Sprintf("t%d", i), data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ent.RegisterRules(context.Background(), src); err != nil {
			t.Fatal(err)
		}
		ents[i] = ent
		sizes[i] = ent.CurrentView().Snap.NumNodes()
	}

	var wg sync.WaitGroup
	ctx := context.Background()
	for i, ent := range ents {
		wg.Add(1)
		go func(i int, ent *GraphEntry) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for k := 0; k < 15; k++ {
				node := fmt.Sprintf("n%d", rng.Intn(sizes[i]))
				if _, err := ent.Mutate(ctx, []Op{
					{Op: "set_attr", ID: node, Attr: "type", Value: "programmer"},
				}); err != nil {
					t.Errorf("tenant %d: %v", i, err)
					return
				}
				view := ent.CurrentView()
				direct, err := view.Val.RunCtx(ctx, 0)
				if err != nil {
					t.Errorf("tenant %d: %v", i, err)
					return
				}
				if len(direct) != len(view.Violations) {
					t.Errorf("tenant %d: maintained %d, direct %d", i, len(view.Violations), len(direct))
					return
				}
			}
		}(i, ent)
	}
	wg.Wait()

	if n := cat.Engine().CachedGraphs(); n > 2 {
		t.Fatalf("engine cache holds %d graphs, bound 2", n)
	}
}
