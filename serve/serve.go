// Package serve is the multi-tenant serving subsystem over the gedlib
// engine: a long-running catalog of named property graphs, each with a
// registered rule set, a perpetually maintained violation set, and an
// HTTP+JSON API for mutating the graphs and querying dependency state
// under heavy concurrent traffic.
//
// The design separates a lock-free read path from a coalescing write
// path:
//
//   - Reads (violation listings, targeted re-validation, stats) run
//     against an immutable View — the latest published (snapshot,
//     prepared validator, violation set, name table) — loaded from an
//     atomic pointer. Readers never take the graph lock and never block
//     writers; an in-flight reader keeps working against the view it
//     loaded even as successors land (its own reference keeps the view
//     alive). A small bounded history of recent views is additionally
//     retained for observability — delta-advanced snapshots share
//     their storage copy-on-write, so the history costs O(recent Δs),
//     not full copies.
//   - Writes enqueue onto a per-graph coalescing batcher: a bounded
//     queue flushed when it reaches FlushOps operations or when
//     MaxDelay elapses, whichever is first. One flush applies the
//     merged batch to the mutable graph and runs a single Engine.Apply,
//     so the snapshot and the maintained violation set advance in
//     O(|Δ|) once per batch rather than once per request. A full queue
//     pushes back (ErrQueueFull → HTTP 429) instead of buffering
//     unboundedly.
//
// Consistency model: a write is durable and visible to every subsequent
// read once its request returns — the mutation call waits for the flush
// that contains it. Reads see the state as of the last flushed batch;
// they are never dirty (a view is only published after Engine.Apply
// committed the whole batch) and never torn (views are immutable).
//
// Failure model: when a graph's persistence starts failing, the graph
// degrades rather than taking the process down or silently dropping
// durability. Transient WAL-append errors are retried inside the flush
// with capped backoff; a failed fsync, exhausted retries, or a
// permanent error (ENOSPC, EROFS) flips the graph to degraded —
// reads keep serving the last published view, writes fail fast with
// ErrDegraded (HTTP 503 + Retry-After), and health surfaces the cause
// in /healthz and per-graph stats. Recovery is a heal checkpoint (a
// full rewrite, which also rolls forward applied-but-unlogged ops)
// attempted by a backed-off background probe or forced via
// POST /graphs/{name}/enable. See the README's "Failure model &
// degraded modes" section.
//
// Failover model: a durable catalog is a leader (Restore — owns the
// WALs, accepts writes), a follower (Follow — tails the leader's WALs,
// serves reads), or per-graph fenced (a deposed leader). POST /promote
// turns a follower into the leader: tail loops stop, each graph's WAL
// is drained to its end, the leadership epoch is bumped behind a
// crash-atomic fence bound (persist.Store.Promote), and batchers start
// accepting writes — the measured promotion time is the recovery-time
// objective (RTO). The deposed leader's next append or fsync fails the
// epoch fence check (persist.ErrFenced) before being acknowledged: its
// graphs turn fenced — reads keep serving the last view, writes get
// 503 + Retry-After like the degraded path, but fencing is sticky (no
// probe can heal it; the log belongs to a newer epoch). It reboots as
// a follower of the new epoch via POST /demote, or with its old epoch
// asserted explicitly (Config.AssumeEpoch, gedserve -epoch) so the
// fence is applied at startup instead of first write. See the README's
// "Failover & roles" section.
//
// Command gedserve is a thin daemon over this package; `gedbench
// -experiment serve` drives it with a Zipfian multi-tenant load and
// `gedbench -experiment chaos` soaks it under injected disk faults.
package serve

import (
	"errors"
	"time"

	"gedlib"
	"gedlib/persist"
)

// Errors surfaced by the catalog and batcher; the HTTP layer maps them
// to status codes (404, 409, 429, 503).
var (
	ErrNotFound  = errors.New("serve: no such graph")
	ErrExists    = errors.New("serve: graph already exists")
	ErrQueueFull = errors.New("serve: write queue full")
	// ErrTooManyOps rejects a single write request larger than the
	// whole queue bound — unlike ErrQueueFull it can never succeed on
	// retry (HTTP 413, not 429).
	ErrTooManyOps = errors.New("serve: request exceeds the write queue bound")
	ErrClosed     = errors.New("serve: graph closed")
	// ErrFlush wraps a server-side failure of the flush that carried a
	// write (HTTP 500 — the fault is the server's, not the request's).
	ErrFlush = errors.New("serve: flush failed")
	// ErrReadOnly rejects writes against a follower catalog — a replica
	// tailing a leader's WAL accepts reads only (HTTP 403).
	ErrReadOnly = errors.New("serve: graph is read-only (follower)")
	// ErrDegraded rejects writes against a graph whose persist layer is
	// permanently failing: the last published view keeps serving reads,
	// writes get 503 + Retry-After until the disk heals (auto-probe) or
	// an operator re-enables the graph (POST /graphs/{name}/enable).
	ErrDegraded = errors.New("serve: graph degraded (persist failure); serving reads only")
	// ErrFenced rejects writes against a deposed leader's graph: a newer
	// leadership epoch owns the WAL (a follower was promoted). Reads
	// keep serving the last view; writes get 503 + Retry-After. Unlike
	// ErrDegraded this is sticky — no probe can heal it; the process
	// must reboot as a follower of the new epoch (POST /demote).
	ErrFenced = errors.New("serve: graph fenced (a newer leadership epoch owns the log); serving reads only")
	// ErrNotFollower rejects a promotion of a catalog that has no
	// follower graphs to promote (HTTP 409).
	ErrNotFollower = errors.New("serve: catalog has no follower graphs to promote")
)

// SpanData is one completed traced operation, as delivered to
// Config.OnSlowOp and served by /tracez.
type SpanData = gedlib.SpanData

// Config tunes a Server. The zero value selects every default.
type Config struct {
	// Workers is the engine's validation parallelism (WithWorkers).
	Workers int
	// Shards, when > 1, routes every graph's Validate/Apply through the
	// partitioned engine path (WithShards): P shard snapshots with
	// boundary-aware parallel validation. /stats then reports each
	// graph's shard topology.
	Shards int
	// Partitioner selects the WithShards placement strategy: "greedy"
	// (streaming edge-cut) or "hash"; empty selects the engine default
	// (hash). Ignored unless Shards > 1.
	Partitioner string
	// GraphCacheBound bounds the engine's per-graph cached state
	// (WithGraphCacheBound); 0 selects the engine default.
	GraphCacheBound int
	// ChaseDepth bounds chase requests (WithChaseDepth); 0 = unbounded.
	ChaseDepth int

	// FlushOps flushes a graph's write queue once this many operations
	// are pending. Default 128.
	FlushOps int
	// MaxDelay flushes a non-empty write queue after this long even if
	// FlushOps was not reached. Default 2ms.
	MaxDelay time.Duration
	// MaxQueueOps bounds a graph's pending write queue; an enqueue that
	// would exceed it fails with ErrQueueFull. Default 4096.
	MaxQueueOps int

	// MaxInFlight bounds concurrently admitted HTTP requests; excess
	// requests are rejected with 503 rather than queued. Default 256.
	MaxInFlight int
	// RequestTimeout bounds each admitted request's context. Default 30s.
	RequestTimeout time.Duration

	// RetainViews is how many recently published views each graph keeps
	// referenced beyond the latest (an observability history; readers
	// keep their own views alive regardless). Default 4.
	RetainViews int

	// DataDir, when non-empty, makes the catalog durable: every graph
	// gets a WAL + checkpoint directory under it (package gedlib/persist).
	// Empty keeps the catalog purely in-memory.
	DataDir string
	// Fsync is the WAL sync policy: "batch" (default — one fsync per
	// coalesced flush), "always", or "off".
	Fsync string
	// CheckpointEvery is how many logical ops accumulate in a graph's
	// WAL before the next flush writes a checkpoint and rotates the log.
	// 0 selects the persist default (4096).
	CheckpointEvery int
	// RetainCheckpoints is how many checkpoints (and their WAL segments)
	// survive compaction; more retention gives lagging followers more
	// slack. 0 selects the persist default (2).
	RetainCheckpoints int
	// FollowPoll is a follower catalog's WAL poll interval. 0 selects
	// the persist default (25ms).
	FollowPoll time.Duration
	// RescanInterval is how often a follower catalog rescans the store
	// for graphs created after it started following. Each sleep is
	// jittered ±25% so a fleet of followers doesn't rescan in lockstep.
	// Default 1s.
	RescanInterval time.Duration
	// AssumeEpoch, when non-nil, asserts the leadership epoch a
	// restoring leader believes it owns. If the on-disk epoch has moved
	// past it (a follower was promoted while this leader was down), the
	// affected graphs come up fenced — read-only — instead of failing
	// on their first write. nil trusts the recovered on-disk epoch.
	AssumeEpoch *uint64

	// FlushRetries is how many times a flush retries a transient WAL
	// append error (capped exponential backoff, in place) before the
	// graph degrades. Default 3.
	FlushRetries int
	// ProbeInterval is the base delay of a degraded graph's auto-probe
	// recovery loop; probes back off exponentially (jittered, capped at
	// 16x) while the disk stays broken. Default 250ms.
	ProbeInterval time.Duration
	// FS overrides the filesystem the persist layer goes through —
	// fault injection (bench.ChaosSoak, gedserve -fault) and tests.
	// nil selects the OS.
	FS persist.FS

	// SlowOp, when > 0, is the slow-operation threshold: every traced
	// operation (flushes, and anything else the observer spans) at least
	// this slow is handed to OnSlowOp synchronously. 0 disables the
	// slow-op log.
	SlowOp time.Duration
	// OnSlowOp receives the spans meeting SlowOp (gedserve logs them).
	// Ignored when SlowOp is 0 or the observer is disabled.
	OnSlowOp func(*gedlib.SpanData)
	// DisableObserver turns off the added pipeline instrumentation: no
	// engine/persist/matcher metrics, no trace spans, no per-stage flush
	// histograms. The serving counters behind /statsz (flushes, reads,
	// health, admission) are unconditional and stay on — gedbench's obs
	// experiment uses this switch to measure exactly the added cost.
	DisableObserver bool
}

// withDefaults fills in the documented defaults.
func (c Config) withDefaults() Config {
	if c.FlushOps <= 0 {
		c.FlushOps = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxQueueOps <= 0 {
		c.MaxQueueOps = 4096
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetainViews <= 0 {
		c.RetainViews = 4
	}
	if c.FlushRetries <= 0 {
		c.FlushRetries = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.RescanInterval <= 0 {
		c.RescanInterval = time.Second
	}
	return c
}

// engine builds the configured engine, reporting into o (nil leaves
// the engine unobserved).
func (c Config) engine(o *gedlib.Observer) *gedlib.Engine {
	opts := []gedlib.Option{}
	if o != nil {
		opts = append(opts, gedlib.WithObserver(o))
	}
	if c.Workers != 0 {
		opts = append(opts, gedlib.WithWorkers(c.Workers))
	}
	if c.GraphCacheBound != 0 {
		opts = append(opts, gedlib.WithGraphCacheBound(c.GraphCacheBound))
	}
	if c.ChaseDepth != 0 {
		opts = append(opts, gedlib.WithChaseDepth(c.ChaseDepth))
	}
	if c.Shards > 1 {
		opts = append(opts, gedlib.WithShards(c.Shards))
		if c.Partitioner == "greedy" {
			opts = append(opts, gedlib.WithPartitioner(gedlib.GreedyPartitioner()))
		}
	}
	return gedlib.New(opts...)
}
