package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body []byte, wantCode int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, data)
	}
	out := map[string]any{}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return out
}

// TestHTTPEndToEnd drives the documented lifecycle over real HTTP:
// load testdata/kb.json, register testdata/rules.ged, read violations,
// repair via mutate, observe the maintained set shrink, chase, stats.
func TestHTTPEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond})
	kb, err := os.ReadFile("../testdata/kb.json")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := os.ReadFile("../testdata/rules.ged")
	if err != nil {
		t.Fatal(err)
	}

	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)
	doJSON(t, "POST", ts.URL+"/graphs?name=kb", kb, http.StatusCreated)
	// Duplicate create conflicts.
	doJSON(t, "POST", ts.URL+"/graphs?name=kb", kb, http.StatusConflict)
	// Unknown graph 404s.
	doJSON(t, "GET", ts.URL+"/graphs/nope/violations", nil, http.StatusNotFound)

	res := doJSON(t, "POST", ts.URL+"/graphs/kb/rules", rules, http.StatusOK)
	if res["rules"].(float64) != 2 {
		t.Fatalf("registered %v rules, want 2", res["rules"])
	}
	seeded := res["violations"].(float64)
	if seeded == 0 {
		t.Fatal("kb.json plants violations but the seeding validation found none")
	}

	res = doJSON(t, "GET", ts.URL+"/graphs/kb/violations", nil, http.StatusOK)
	if res["total"].(float64) != seeded {
		t.Fatalf("violations total %v, want %v", res["total"], seeded)
	}

	// gibson (a psychologist) created a video game: repair the type and
	// the phi1 violation must leave the maintained set.
	mut, _ := json.Marshal(map[string]any{"ops": []Op{
		{Op: "set_attr", ID: "gibson", Attr: "type", Value: "programmer"},
	}})
	res = doJSON(t, "POST", ts.URL+"/graphs/kb/mutate", mut, http.StatusOK)
	if res["applied"].(float64) != 1 {
		t.Fatalf("mutate applied %v, want 1", res["applied"])
	}
	res = doJSON(t, "GET", ts.URL+"/graphs/kb/violations", nil, http.StatusOK)
	if got := res["total"].(float64); got != seeded-1 {
		t.Fatalf("after repair: %v violations, want %v", got, seeded-1)
	}

	// Targeted validation of the repaired neighborhood is clean; the
	// capital mismatch still shows when probing finland.
	body, _ := json.Marshal(map[string]any{"nodes": []string{"gibson"}})
	res = doJSON(t, "POST", ts.URL+"/graphs/kb/validate", body, http.StatusOK)
	if res["count"].(float64) != 0 {
		t.Fatalf("repaired neighborhood still dirty: %v", res["violations"])
	}
	body, _ = json.Marshal(map[string]any{"nodes": []string{"finland"}})
	res = doJSON(t, "POST", ts.URL+"/graphs/kb/validate", body, http.StatusOK)
	if res["count"].(float64) == 0 {
		t.Fatal("capital-name violation not found by targeted validation")
	}

	// Whole-graph satisfies probe.
	res = doJSON(t, "POST", ts.URL+"/graphs/kb/validate", nil, http.StatusOK)
	if res["satisfies"].(bool) {
		t.Fatal("graph reported clean while phi2 is violated")
	}

	// Chase: the capital-name clash makes the chase equate the two
	// names; it stays consistent (no forbidding rule matches).
	res = doJSON(t, "POST", ts.URL+"/graphs/kb/chase", nil, http.StatusOK)
	if _, ok := res["consistent"]; !ok {
		t.Fatalf("chase response missing consistent: %v", res)
	}

	// Stats and statsz.
	res = doJSON(t, "GET", ts.URL+"/graphs/kb/stats", nil, http.StatusOK)
	if res["name"] != "kb" || res["flushes"].(float64) < 1 {
		t.Fatalf("entry stats incomplete: %v", res)
	}
	res = doJSON(t, "GET", ts.URL+"/statsz", nil, http.StatusOK)
	if res["graphs"].(float64) != 1 {
		t.Fatalf("statsz graphs %v, want 1", res["graphs"])
	}

	// Delete, then the entry is gone.
	doJSON(t, "DELETE", ts.URL+"/graphs/kb", nil, http.StatusOK)
	doJSON(t, "GET", ts.URL+"/graphs/kb/violations", nil, http.StatusNotFound)
}

// TestHTTPBadInputs: malformed bodies and unknown ops surface as 400s
// with JSON errors, not 500s.
func TestHTTPBadInputs(t *testing.T) {
	_, ts := startServer(t, Config{MaxDelay: time.Millisecond})
	doJSON(t, "POST", ts.URL+"/graphs?name=g", nil, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/graphs?name=", nil, http.StatusBadRequest)
	// A name with '/' would be unroutable by the {name} wildcard.
	doJSON(t, "POST", ts.URL+"/graphs?name=a%2Fb", nil, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/graphs?name=bad", []byte("{not json"), http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/graphs/g/rules", []byte("ged broken {{{"), http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/graphs/g/mutate", []byte("{}"), http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/graphs/g/mutate", []byte("nope"), http.StatusBadRequest)
	body, _ := json.Marshal(map[string]any{"nodes": []string{"ghost"}})
	doJSON(t, "POST", ts.URL+"/graphs/g/validate", body, http.StatusBadRequest)
}

// TestHTTPAdmissionControl: past MaxInFlight concurrent requests the
// server sheds load with 503 instead of queueing, and /healthz and
// /statsz keep answering.
func TestHTTPAdmissionControl(t *testing.T) {
	s, ts := startServer(t, Config{MaxInFlight: 2, MaxDelay: time.Millisecond})
	doJSON(t, "POST", ts.URL+"/graphs?name=g", nil, http.StatusCreated)

	// Saturate the two slots with requests parked in a slow handler: a
	// mutate whose flush we stall by hammering... simpler: park them in
	// admission by occupying the semaphore directly.
	s.adm.sem <- struct{}{}
	s.adm.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/graphs/g/violations")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request got %d, want 503", resp.StatusCode)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)
	res := doJSON(t, "GET", ts.URL+"/statsz", nil, http.StatusOK)
	if res["rejected_requests"].(float64) < 1 {
		t.Fatalf("statsz did not count the shed request: %v", res)
	}
	<-s.adm.sem
	<-s.adm.sem
	doJSON(t, "GET", ts.URL+"/graphs/g/violations", nil, http.StatusOK)
}

// TestHTTPQueueFullBackpressure: a saturated write queue answers 429.
func TestHTTPQueueFullBackpressure(t *testing.T) {
	s, ts := startServer(t, Config{MaxQueueOps: 1, MaxDelay: time.Hour, FlushOps: 1 << 20})
	doJSON(t, "POST", ts.URL+"/graphs?name=g", nil, http.StatusCreated)
	ent, err := s.Catalog().Get("g")
	if err != nil {
		t.Fatal(err)
	}
	// Park one op in the hour-long flush window without waiting on it,
	// filling the one-op queue.
	parked, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ent.Mutate(parked, []Op{{Op: "add_node", ID: "a", Label: "thing"}})
	for i := 0; i < 1000 && ent.b.Load().queueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if ent.b.Load().queueDepth() != 1 {
		t.Fatalf("queue depth %d, want 1", ent.b.Load().queueDepth())
	}
	add, _ := json.Marshal(map[string]any{"ops": []Op{
		{Op: "add_node", ID: "b", Label: "thing"},
	}})
	resp, err := http.Post(ts.URL+"/graphs/g/mutate", "application/json", strings.NewReader(string(add)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
}
