package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestShardStatsJSONShape pins the shard-topology surface of /stats and
// /statsz (as done for the durability counters): a sharded catalog
// reports shards, partitioner, cut_edges and per-shard violation
// counts, and a monolithic catalog omits all four keys.
func TestShardStatsJSONShape(t *testing.T) {
	s, ts := startServer(t, Config{
		MaxDelay:    time.Millisecond,
		Shards:      2,
		Partitioner: "greedy",
	})
	kb, err := os.ReadFile("../testdata/kb.json")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := os.ReadFile("../testdata/rules.ged")
	if err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts.URL+"/graphs?name=kb", kb, http.StatusCreated)
	res := doJSON(t, "POST", ts.URL+"/graphs/kb/rules", rules, http.StatusOK)
	total := res["violations"].(float64)
	if total == 0 {
		t.Fatal("kb.json plants violations but the seeding validation found none")
	}

	res = doJSON(t, "GET", ts.URL+"/graphs/kb/stats", nil, http.StatusOK)
	if res["shards"].(float64) != 2 {
		t.Fatalf("stats shards = %v, want 2", res["shards"])
	}
	if res["partitioner"] != "greedy" {
		t.Fatalf("stats partitioner = %v, want greedy", res["partitioner"])
	}
	sv, ok := res["shard_violations"].([]any)
	if !ok || len(sv) != 2 {
		t.Fatalf("stats shard_violations = %v, want 2 per-shard counts", res["shard_violations"])
	}
	sum := 0.0
	for _, n := range sv {
		sum += n.(float64)
	}
	if sum != total {
		t.Fatalf("per-shard violation counts sum to %v, view reports %v", sum, total)
	}
	// cut_edges is omitempty: it must appear exactly when the topology
	// reports a nonzero cut. Compare against the struct-level stats.
	ent, err := s.Catalog().Get("kb")
	if err != nil {
		t.Fatal(err)
	}
	st := ent.Stats()
	if _, present := res["cut_edges"]; present != (st.CutEdges != 0) {
		t.Fatalf("cut_edges key present=%v but CutEdges=%d", present, st.CutEdges)
	}
	if present := res["cut_edges"] != nil; present && res["cut_edges"].(float64) != float64(st.CutEdges) {
		t.Fatalf("cut_edges = %v, struct reports %d", res["cut_edges"], st.CutEdges)
	}

	// /statsz carries the same keys per entry.
	res = doJSON(t, "GET", ts.URL+"/statsz", nil, http.StatusOK)
	entries := res["entries"].([]any)
	if len(entries) != 1 {
		t.Fatalf("statsz entries = %d, want 1", len(entries))
	}
	e := entries[0].(map[string]any)
	if e["shards"].(float64) != 2 || e["partitioner"] != "greedy" {
		t.Fatalf("statsz entry missing shard topology: %v", e)
	}

	// A monolithic catalog must omit every shard key (omitempty).
	_, ts2 := startServer(t, Config{MaxDelay: time.Millisecond})
	doJSON(t, "POST", ts2.URL+"/graphs?name=kb", kb, http.StatusCreated)
	doJSON(t, "POST", ts2.URL+"/graphs/kb/rules", rules, http.StatusOK)
	res = doJSON(t, "GET", ts2.URL+"/graphs/kb/stats", nil, http.StatusOK)
	for _, key := range []string{"shards", "partitioner", "cut_edges", "shard_violations"} {
		if _, present := res[key]; present {
			raw, _ := json.Marshal(res)
			t.Fatalf("monolithic /stats leaks %q: %s", key, raw)
		}
	}
}
