package serve

// EntryStats is one graph's serving statistics, as reported by
// GET /graphs/{name}/stats and aggregated under /statsz.
type EntryStats struct {
	Name string `json:"name"`

	// Graph state as of the latest published view.
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Version    uint64 `json:"version"`
	Epoch      uint64 `json:"epoch"`
	Rules      int    `json:"rules"`
	Violations int    `json:"violations"`

	// Read path.
	ReadsServed   uint64 `json:"reads_served"`
	RetainedViews int    `json:"retained_views"`

	// Write path: coalescing visibility. AvgBatchOps > 1 means flushes
	// are merging concurrent writes.
	QueueOps       int     `json:"queue_ops"`
	Flushes        uint64  `json:"flushes"`
	FlushedOps     uint64  `json:"flushed_ops"`
	FlushedReqs    uint64  `json:"flushed_reqs"`
	RejectedWrites uint64  `json:"rejected_writes"`
	MaxBatchOps    uint64  `json:"max_batch_ops"`
	AvgBatchOps    float64 `json:"avg_batch_ops"`
	AvgBatchReqs   float64 `json:"avg_batch_reqs"`
}

// ServerStats is the /statsz payload.
type ServerStats struct {
	Graphs int `json:"graphs"`
	// EngineCachedGraphs is how many graphs the shared engine currently
	// retains cached state for (bounded by its LRU).
	EngineCachedGraphs int `json:"engine_cached_graphs"`

	// Admission control.
	InFlight         int    `json:"in_flight"`
	Admitted         uint64 `json:"admitted"`
	RejectedRequests uint64 `json:"rejected_requests"`

	Entries []EntryStats `json:"entries"`
}

// Stats aggregates every entry's statistics.
func (c *Catalog) Stats() []EntryStats {
	names := c.Names()
	out := make([]EntryStats, 0, len(names))
	for _, n := range names {
		if ent, err := c.Get(n); err == nil {
			out = append(out, ent.Stats())
		}
	}
	return out
}
