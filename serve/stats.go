package serve

// EntryStats is one graph's serving statistics, as reported by
// GET /graphs/{name}/stats and aggregated under /statsz.
type EntryStats struct {
	Name string `json:"name"`

	// Graph state as of the latest published view.
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Version    uint64 `json:"version"`
	Epoch      uint64 `json:"epoch"`
	Rules      int    `json:"rules"`
	Violations int    `json:"violations"`

	// Read path.
	ReadsServed   uint64 `json:"reads_served"`
	RetainedViews int    `json:"retained_views"`

	// Write path: coalescing visibility. AvgBatchOps > 1 means flushes
	// are merging concurrent writes.
	QueueOps       int     `json:"queue_ops"`
	Flushes        uint64  `json:"flushes"`
	FlushedOps     uint64  `json:"flushed_ops"`
	FlushedReqs    uint64  `json:"flushed_reqs"`
	RejectedWrites uint64  `json:"rejected_writes"`
	MaxBatchOps    uint64  `json:"max_batch_ops"`
	AvgBatchOps    float64 `json:"avg_batch_ops"`
	AvgBatchReqs   float64 `json:"avg_batch_reqs"`

	// Sharding (set when the catalog's engine runs WithShards and a
	// sharded Validate/Apply has touched this graph). ShardViolations
	// are the per-shard maintained violation counts, indexed by shard;
	// violations live with the owner of their first variable binding.
	Shards          int    `json:"shards,omitempty"`
	Partitioner     string `json:"partitioner,omitempty"`
	CutEdges        int    `json:"cut_edges,omitempty"`
	ShardViolations []int  `json:"shard_violations,omitempty"`

	// Durability (set when the catalog has a data directory).
	// CheckpointAgeOps is how many logical ops the WAL tail holds beyond
	// the newest checkpoint — the replay cost of a crash right now.
	Durable           bool   `json:"durable,omitempty"`
	WALBytes          int64  `json:"wal_bytes,omitempty"`
	WALRecords        uint64 `json:"wal_records,omitempty"`
	LastFsyncNanos    int64  `json:"last_fsync_ns,omitempty"`
	CheckpointVersion uint64 `json:"checkpoint_version,omitempty"`
	CheckpointAgeOps  int    `json:"checkpoint_age_ops,omitempty"`

	// Replication (set on follower entries). FollowerLagNanos is the
	// staleness of the last applied record: now minus its append time;
	// FollowerFailures is the current consecutive tail-failure streak
	// (reset to 0 on every applied record).
	Follower         bool   `json:"follower,omitempty"`
	FollowerRecords  uint64 `json:"follower_records,omitempty"`
	FollowerLagNanos int64  `json:"follower_lag_ns,omitempty"`
	FollowerFailures uint64 `json:"follower_failures,omitempty"`

	// Health & degraded mode (see the README's "Failure model" section).
	// Health is "ok", "degraded" (persist failure — reads keep serving
	// from the last view, writes get 503) or "readonly" (healthy
	// follower); HealthError is the causing error while degraded.
	// WALRetries counts transient WAL appends retried inside flushes,
	// Probes the recovery attempts while degraded, Recoveries the
	// degraded→ok transitions.
	Health           string `json:"health"`
	HealthError      string `json:"health_error,omitempty"`
	DegradedForNanos int64  `json:"degraded_for_ns,omitempty"`
	WALRetries       uint64 `json:"wal_retries,omitempty"`
	Probes           uint64 `json:"probes,omitempty"`
	Recoveries       uint64 `json:"recoveries,omitempty"`

	// Failover & roles (see the README's "Failover & roles" section).
	// Role is "leader", "follower", or "fenced" (a deposed leader whose
	// WAL a newer epoch owns). LeaderEpoch is the leadership epoch the
	// graph's WAL handle writes under; PromotionNanos the wall time of
	// the promotion that made this entry a leader (0 if it never was
	// promoted); FencedAppends the appends/syncs the epoch fence refused.
	Role           string `json:"role,omitempty"`
	LeaderEpoch    uint64 `json:"leader_epoch,omitempty"`
	PromotionNanos int64  `json:"promotion_ns,omitempty"`
	FencedAppends  uint64 `json:"fenced_appends,omitempty"`
}

// ServerStats is the /statsz payload.
type ServerStats struct {
	Graphs int `json:"graphs"`
	// EngineCachedGraphs is how many graphs the shared engine currently
	// retains cached state for (bounded by its LRU).
	EngineCachedGraphs int `json:"engine_cached_graphs"`

	// Admission control.
	InFlight         int    `json:"in_flight"`
	Admitted         uint64 `json:"admitted"`
	RejectedRequests uint64 `json:"rejected_requests"`

	// Durability: the data directory backing the catalog ("" when
	// in-memory) and whether this process is a read-only follower of it.
	// Role is the catalog-level role ("leader" or "follower"; per-graph
	// fenced state is in the entries).
	DataDir  string `json:"data_dir,omitempty"`
	Follower bool   `json:"follower,omitempty"`
	Role     string `json:"role,omitempty"`

	Entries []EntryStats `json:"entries"`
}

// Stats aggregates every entry's statistics.
func (c *Catalog) Stats() []EntryStats {
	names := c.Names()
	out := make([]EntryStats, 0, len(names))
	for _, n := range names {
		if ent, err := c.Get(n); err == nil {
			out = append(out, ent.Stats())
		}
	}
	return out
}
