package serve

import "runtime/debug"

// BuildVersion is the build's identity as reported by GET /versionz and
// gedserve -version, read from the build info the Go linker embeds.
type BuildVersion struct {
	// Module is the main module path, Version its version ("(devel)" on
	// a non-tagged build).
	Module  string `json:"module"`
	Version string `json:"version"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// Revision/RevisionTime/Dirty describe the VCS state, when the build
	// ran inside a checkout.
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	Dirty        bool   `json:"dirty,omitempty"`
}

// VersionInfo reads the binary's embedded build info. Binaries built
// without module support report only the zero identity.
func VersionInfo() BuildVersion {
	var v BuildVersion
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	v.Version = bi.Main.Version
	v.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.RevisionTime = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
}
