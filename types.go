package gedlib

// This file re-exports the core vocabulary of the library from the
// internal packages, so that callers build graphs, patterns, rules and
// literals without ever naming gedlib/internal/...; the aliases carry
// every method of the underlying types.

import (
	"gedlib/internal/axiom"
	"gedlib/internal/chase"
	"gedlib/internal/discover"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/optimize"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
	"gedlib/internal/shard"
)

// ---- property graphs ----

// Graph is a property graph: labeled nodes with attribute maps, and
// labeled directed edges (Section 2 of the paper).
type Graph = graph.Graph

// NodeID identifies a node of a Graph.
type NodeID = graph.NodeID

// Label is a node or edge label; Wildcard matches any label.
type Label = graph.Label

// Attr is an attribute name.
type Attr = graph.Attr

// Value is an attribute value: a string or a number.
type Value = graph.Value

// GraphEdge is one directed labeled edge of a Graph.
type GraphEdge = graph.Edge

// Snapshot is a frozen, read-optimized view of a Graph, built with
// Graph.Freeze(): labels, attribute names and values interned into
// dense ints, CSR adjacency grouped and sorted by edge label, per-label
// node postings, degree statistics, and the attribute-value index
// folded in. Snapshots are immutable and safe for concurrent readers;
// the Engine caches one per graph keyed on Graph.Version, so most
// callers never build one explicitly.
type Snapshot = graph.Snapshot

// Delta is an add-only batch of graph changes between two values of
// Graph.Version: added nodes and edges plus attribute writes.
// Graph.DeltaSince captures one from the graph's own change journal;
// Snapshot.Apply consumes it to advance a frozen snapshot in time
// proportional to the delta, and Engine.Apply drives the whole
// incremental-validation pipeline from it.
type Delta = graph.Delta

// NodeAdd is one added node of a Delta.
type NodeAdd = graph.NodeAdd

// Partitioner assigns graph nodes to shards for WithShards. The two
// built-in strategies are HashPartitioner and GreedyPartitioner;
// implementations must be deterministic for a given graph and shard
// count.
type Partitioner = shard.Partitioner

// HashPartitioner returns the baseline node-placement strategy for
// WithShards: owner = hash(id) mod P. O(1) placement and tight balance,
// but topology-blind — expect a cut fraction near (P-1)/P.
func HashPartitioner() Partitioner { return shard.NewHash() }

// GreedyPartitioner returns the streaming greedy edge-cut strategy for
// WithShards (linear deterministic greedy): each node joins the shard
// holding most of its already-placed neighbors, damped by a capacity
// penalty. On community-structured graphs it cuts a small fraction of
// the edges.
func GreedyPartitioner() Partitioner { return shard.NewGreedy() }

// AttrWrite is one attribute write of a Delta.
type AttrWrite = graph.AttrWrite

// GraphImage is a flat, arena-style export of a Graph: symbol tables
// plus fixed-width columnar rows for nodes, edges and attributes. It is
// the payload of a persist checkpoint file — the numeric columns can be
// aliased directly onto mmap'd bytes and handed to ImportImage.
type GraphImage = graph.Image

// Wildcard is the special label '_' that matches any label.
const Wildcard = graph.Wildcard

// NewGraph returns an empty property graph.
func NewGraph() *Graph { return graph.New() }

// ExportImage flattens g into a GraphImage (deterministic: identical
// graphs export identical images).
func ExportImage(g *Graph) *GraphImage { return graph.ImageOf(g) }

// ImportImage rebuilds the exported graph. Every index is bounds
// checked, so a corrupted image yields an error, never a panic. The
// rebuilt graph's version counter and journal base are the image's
// version, so deltas recorded after the export still compose.
func ImportImage(img *GraphImage) (*Graph, error) { return graph.FromImage(img) }

// String wraps a string attribute value.
func String(s string) Value { return graph.String(s) }

// Number wraps a numeric attribute value.
func Number(f float64) Value { return graph.Number(f) }

// Int wraps an integer attribute value (stored as a number).
func Int(i int) Value { return graph.Int(i) }

// Bool wraps a boolean attribute value as the number 0 or 1, matching
// the paper's examples.
func Bool(b bool) Value { return graph.Bool(b) }

// ---- patterns and matches ----

// Pattern is a graph pattern Q[x̄]: variables with (possibly wildcard)
// labels, connected by labeled edges.
type Pattern = pattern.Pattern

// Var is a pattern variable.
type Var = pattern.Var

// Match is a homomorphism h(x̄) from a pattern's variables to nodes.
type Match = pattern.Match

// NewPattern returns an empty pattern; chain AddVar and AddEdge to
// build it.
func NewPattern() *Pattern { return pattern.New() }

// CountMatches counts the matches of p in g.
func CountMatches(p *Pattern, g *Graph) int { return pattern.CountMatches(p, g) }

// FindMatches collects up to limit matches of p in g (limit <= 0 means
// all).
func FindMatches(p *Pattern, g *Graph, limit int) []Match { return pattern.FindMatches(p, g, limit) }

// HasMatch reports whether p has at least one match in g.
func HasMatch(p *Pattern, g *Graph) bool { return pattern.HasMatch(p, g) }

// ---- rules (GEDs) and literals ----

// Rule is a graph entity dependency φ = Q[x̄](X → Y): whenever the
// pattern matches and the antecedent X holds, the consequent Y must
// hold.
type Rule = ged.GED

// RuleSet is a set Σ of rules.
type RuleSet = ged.Set

// Literal is one (in)equality of a rule: x.A = c, x.A = y.B, or
// x.id = y.id (GDCs additionally use ordered comparisons).
type Literal = ged.Literal

// Operand is one side of a literal.
type Operand = ged.Operand

// Op is a literal's comparison predicate. Plain GEDs use only OpEq.
type Op = ged.Op

// LiteralKind discriminates constant, variable and id literals.
type LiteralKind = ged.LiteralKind

// Comparison predicates.
const (
	OpEq = ged.OpEq
	OpNe = ged.OpNe
	OpLt = ged.OpLt
	OpLe = ged.OpLe
	OpGt = ged.OpGt
	OpGe = ged.OpGe
)

// Literal kinds, as reported by Literal.Kind.
const (
	ConstLiteral = ged.ConstLiteral
	VarLiteral   = ged.VarLiteral
	IDLiteral    = ged.IDLiteral
)

// NewRule returns the rule Q[x̄](X → Y).
func NewRule(name string, q *Pattern, x, y []Literal) *Rule { return ged.New(name, q, x, y) }

// NewKey builds a (possibly recursive) graph key for the entities
// matched by x0 in q: the pattern is doubled into Q ∪ Q', and the key
// asserts x0.id = x0'.id whenever buildX's literals hold between the two
// copies. buildX is called once per variable of q with the original
// variable and its copy.
func NewKey(name string, q *Pattern, x0 Var, buildX func(x, fx Var) []Literal) (*Rule, error) {
	return ged.NewGKey(name, q, x0, buildX)
}

// IsKey reports whether the rule has the syntactic shape of a graph key.
func IsKey(r *Rule) bool { return ged.IsGKey(r) }

// ConstLit returns the literal x.A = c.
func ConstLit(x Var, a Attr, c Value) Literal { return ged.ConstLit(x, a, c) }

// VarLit returns the literal x.A = y.B.
func VarLit(x Var, a Attr, y Var, b Attr) Literal { return ged.VarLit(x, a, y, b) }

// IDLit returns the literal x.id = y.id.
func IDLit(x, y Var) Literal { return ged.IDLit(x, y) }

// Cmp returns the comparison literal x.A op c (a GDC literal for
// op != OpEq).
func Cmp(x Var, a Attr, op Op, c Value) Literal { return ged.Cmp(x, a, op, c) }

// CmpVars returns the comparison literal x.A op y.B.
func CmpVars(x Var, a Attr, op Op, y Var, b Attr) Literal { return ged.CmpVars(x, a, op, y, b) }

// False returns the consequent desugaring of the Boolean constant false
// anchored at variable y: a rule with this consequent forbids its
// antecedent.
func False(y Var) []Literal { return ged.False(y) }

// ---- analysis results ----

// Violation is one witness that a graph violates a rule: the match, and
// the first consequent literal it fails.
type Violation = reason.Violation

// SatResult reports a satisfiability analysis; Model is a certified
// witness graph when Satisfiable.
type SatResult = reason.SatResult

// ImplResult reports an implication analysis Σ ⊨ φ.
type ImplResult = reason.ImplResult

// ChaseResult is the outcome of chasing a graph with a rule set
// (Theorem 1: it is order-independent). Consistent() distinguishes a
// terminal chase from the paper's ⊥; Materialize() yields the quotient
// graph.
type ChaseResult = chase.Result

// Conflict explains an inconsistent chase: the two facts that clashed.
type Conflict = chase.Conflict

// RepairResult reports a chase-based repair: the repaired graph and the
// canonical edit script, or the conflict that makes the data
// unrepairable.
type RepairResult = repair.Result

// RepairEdit is one entry of a repair's edit script.
type RepairEdit = repair.Edit

// Proof is a machine-checkable derivation in the finite axiom system
// A_GED (Section 7).
type Proof = axiom.Proof

// Discovered is a mined rule with its support.
type Discovered = discover.Discovered

// DiscoverOptions tunes rule mining.
type DiscoverOptions = discover.Options

// Query is a pattern query with an optional conjunctive selection.
type Query = optimize.Query

// RewriteResult is the optimized form of a query: a smaller pattern,
// inferred constant selections, or a proof the query is empty on every
// graph satisfying Σ.
type RewriteResult = optimize.Result

// Validator is a prepared, attribute-indexed validator for repeated
// validation of one graph under one rule set.
type Validator = reason.Validator

// NewValidator prepares g for repeated validation under sigma, building
// attribute indexes so selective antecedent literals pivot the search.
func NewValidator(g *Graph, sigma RuleSet) *Validator { return reason.NewValidator(g, sigma) }

// NewSnapshotValidator prepares a validator over an existing immutable
// snapshot, sharing it instead of re-freezing. This is the read-path
// building block of a serving layer: the validator is safe for
// concurrent use, never touches the mutable graph, and Rebase follows a
// delta-advanced snapshot at the cost of the rule set.
func NewSnapshotValidator(snap *Snapshot, sigma RuleSet) *Validator {
	return reason.NewValidatorOn(snap, sigma)
}

// ---- convenience decision shortcuts (context-free) ----

// Satisfies reports g ⊨ Σ. For cancellation and parallelism use
// Engine.Validate.
func Satisfies(g *Graph, sigma RuleSet) bool { return reason.Satisfies(g, sigma) }

// DecideSat answers only the yes/no satisfiability question, using the
// O(1) fast path for GFDx sets (Theorem 3). For the full result with a
// witness model use Engine.CheckSat.
func DecideSat(sigma RuleSet) bool { return reason.DecideSat(sigma) }

// IsModel reports whether g is a model of Σ: g ⊨ Σ and every pattern of
// Σ has a match in g (the strong satisfiability of Section 5.1).
func IsModel(g *Graph, sigma RuleSet) bool { return reason.IsModel(g, sigma) }

// Answers evaluates a query on a graph: the matches of its pattern that
// satisfy its selection.
func Answers(q *Query, g *Graph) []Match { return optimize.Answers(q, g) }
