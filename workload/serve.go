package workload

import "math/rand"

// ServeOp discriminates the request classes of the serving workload.
type ServeOp uint8

const (
	// OpListViolations reads the maintained violation set of a graph.
	OpListViolations ServeOp = iota
	// OpValidateNodes re-validates the neighborhood of specific nodes
	// against the latest snapshot.
	OpValidateNodes
	// OpStats reads a graph's serving statistics.
	OpStats
	// OpMutate applies a small batch of mutations (attribute writes and
	// edge inserts) to a graph.
	OpMutate
)

// ServeRequest is one request of the generated mix: which tenant graph
// it targets, what it does, and which (hot-skewed) nodes it touches.
type ServeRequest struct {
	// Graph indexes the tenant graph, 0 being the hottest.
	Graph int
	// Op is the request class.
	Op ServeOp
	// Nodes are the hot-skewed node indexes the request touches:
	// validation targets for OpValidateNodes, mutation targets for
	// OpMutate (one mutation per node). Nil for the other classes.
	Nodes []int
	// AttrWrite reports, per mutation target, whether to write an
	// attribute (true) or insert an edge (false). Parallel to Nodes.
	AttrWrite []bool
}

// IsRead reports whether the request only reads serving state.
func (r ServeRequest) IsRead() bool { return r.Op != OpMutate }

// ServeMix generates the request stream of the serving benchmark: a
// Zipfian-skewed multi-tenant mix in which a few graphs are hot and,
// within each graph, a few nodes absorb most of the traffic (the
// hot-key shape a production catalog sees). The read fraction splits
// the remainder between violation listing, targeted validation and
// stats reads. Everything is deterministic in the seed; each concurrent
// client should own its own ServeMix (the generator is not
// goroutine-safe) seeded distinctly.
type ServeMix struct {
	rng       *rand.Rand
	graphZipf *rand.Zipf
	nodeZipf  *rand.Zipf
	readFrac  float64
	graphs    int
}

// NewServeMix returns a generator over `graphs` tenant graphs of
// `nodes` nodes each. readFrac in [0,1] is the fraction of read
// requests (0.9 gives the 90/10 mix); skew > 1 is the Zipf exponent for
// both the graph and node choice (1.2 is a gentle production-like skew,
// larger is hotter).
func NewServeMix(seed int64, graphs, nodes int, readFrac, skew float64) *ServeMix {
	if graphs < 1 {
		graphs = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	if skew <= 1 {
		skew = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	return &ServeMix{
		rng:       rng,
		graphZipf: rand.NewZipf(rng, skew, 1, uint64(graphs-1)),
		nodeZipf:  rand.NewZipf(rng, skew, 1, uint64(nodes-1)),
		readFrac:  readFrac,
		graphs:    graphs,
	}
}

// Next returns the next request of the stream.
func (m *ServeMix) Next() ServeRequest {
	req := ServeRequest{Graph: int(m.graphZipf.Uint64())}
	if m.rng.Float64() < m.readFrac {
		// Reads: mostly violation listings, a targeted validation of a
		// hot neighborhood for one in three, an occasional stats probe.
		switch m.rng.Intn(6) {
		case 0, 1, 2:
			req.Op = OpListViolations
		case 3, 4:
			req.Op = OpValidateNodes
			req.Nodes = m.hotNodes(1 + m.rng.Intn(3))
		default:
			req.Op = OpStats
		}
		return req
	}
	// Writes: 1–3 mutations, each an attribute write or an edge insert
	// on a hot node. Bursty writes to the same hot graph are what the
	// coalescing batcher is for.
	req.Op = OpMutate
	req.Nodes = m.hotNodes(1 + m.rng.Intn(3))
	req.AttrWrite = make([]bool, len(req.Nodes))
	for i := range req.AttrWrite {
		req.AttrWrite[i] = m.rng.Intn(3) != 0
	}
	return req
}

// hotNodes draws n Zipf-skewed node indexes (duplicates possible —
// traffic really does hammer the same node twice).
func (m *ServeMix) hotNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = int(m.nodeZipf.Uint64())
	}
	return out
}
