package workload

import "testing"

// TestServeMixDeterministicAndSkewed: same seed, same stream; the mix
// honors the read fraction roughly and node 0 is the hottest key.
func TestServeMixDeterministicAndSkewed(t *testing.T) {
	a := NewServeMix(7, 4, 100, 0.9, 1.2)
	b := NewServeMix(7, 4, 100, 0.9, 1.2)
	const n = 5000
	reads := 0
	nodeHits := make(map[int]int)
	for i := 0; i < n; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Graph != rb.Graph || ra.Op != rb.Op || len(ra.Nodes) != len(rb.Nodes) {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ra, rb)
		}
		if ra.Graph < 0 || ra.Graph >= 4 {
			t.Fatalf("graph index %d out of range", ra.Graph)
		}
		if ra.IsRead() {
			reads++
		}
		for _, nd := range ra.Nodes {
			if nd < 0 || nd >= 100 {
				t.Fatalf("node index %d out of range", nd)
			}
			nodeHits[nd]++
		}
		if ra.Op == OpMutate && len(ra.AttrWrite) != len(ra.Nodes) {
			t.Fatalf("AttrWrite not parallel to Nodes: %+v", ra)
		}
	}
	if frac := float64(reads) / n; frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction %.3f, want ~0.9", frac)
	}
	best, bestHits := -1, -1
	for nd, c := range nodeHits {
		if c > bestHits {
			best, bestHits = nd, c
		}
	}
	if best != 0 {
		t.Fatalf("hottest node is %d (%d hits), want 0", best, bestHits)
	}
}
