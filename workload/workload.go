// Package workload exposes the library's synthetic workloads: the
// paper's running-example rules (φ₁–φ₅, ψ₁–ψ₃), generators for the
// knowledge-base / social-network / music-catalog scenarios of
// Example 1, and the 3-colorability hardness families behind the
// Table 1 reductions. Everything is deterministic in its seed.
package workload

import (
	"math/rand"

	"gedlib"
	"gedlib/internal/gen"
)

// ---- the paper's rules ----

// PaperPhi1 is φ₁: a video game can only be created by programmers.
func PaperPhi1() *gedlib.Rule { return gen.PaperPhi1() }

// PaperPhi2 is φ₂: a country's two capitals carry one name.
func PaperPhi2() *gedlib.Rule { return gen.PaperPhi2() }

// PaperPhi3 is φ₃: attribute inheritance over wildcard patterns.
func PaperPhi3() *gedlib.Rule { return gen.PaperPhi3() }

// PaperPhi4 is φ₄: nobody is both child and parent of the same person
// (a forbidding constraint).
func PaperPhi4() *gedlib.Rule { return gen.PaperPhi4() }

// PaperPhi5 is φ₅: the spam-detection rule over k shared liked blogs.
func PaperPhi5(k int) *gedlib.Rule { return gen.PaperPhi5(k) }

// PaperPsi1 is ψ₁: an album is identified by title and artist id.
func PaperPsi1() *gedlib.Rule { return gen.PaperPsi1() }

// PaperPsi2 is ψ₂: an album is identified by title and release year.
func PaperPsi2() *gedlib.Rule { return gen.PaperPsi2() }

// PaperPsi3 is ψ₃: an artist is identified by name and an album id.
func PaperPsi3() *gedlib.Rule { return gen.PaperPsi3() }

// PaperKeys is the recursive key set {ψ₁, ψ₂, ψ₃} of Example 1(3).
func PaperKeys() gedlib.RuleSet { return gen.PaperKeys() }

// PaperGEDs is the full running-example rule set.
func PaperGEDs() gedlib.RuleSet { return gen.PaperGEDs() }

// ---- scenario generators ----

// KBStats reports the inconsistencies planted by KnowledgeBase.
type KBStats = gen.KBStats

// SocialStats reports the accounts planted by SocialNetwork.
type SocialStats = gen.SocialStats

// MusicStats reports the duplicates planted by MusicDB.
type MusicStats = gen.MusicStats

// KnowledgeBase synthesizes a Yago/DBPedia-style knowledge base at the
// given scale with inconsistencies planted at the given rate, for the
// rules φ₁–φ₄.
func KnowledgeBase(seed int64, scale int, rate float64) (*gedlib.Graph, KBStats) {
	return gen.KnowledgeBase(seed, scale, rate)
}

// SocialNetwork synthesizes a social graph for the spam rule φ₅.
func SocialNetwork(seed int64, rings, accountsPerRing int) (*gedlib.Graph, SocialStats) {
	return gen.SocialNetwork(seed, rings, accountsPerRing)
}

// MusicDB synthesizes the album/artist catalog of Example 1(3) with
// duplicate entities planted at the given rate, for the keys ψ₁–ψ₃.
func MusicDB(seed int64, artists int, dupRate float64) (*gedlib.Graph, MusicStats) {
	return gen.MusicDB(seed, artists, dupRate)
}

// PowerLawStats reports what PowerLawSocial generated.
type PowerLawStats = gen.PowerLawStats

// PowerLawSocial synthesizes an LDBC-social-style person graph with
// power-law degree skew and contiguous community blocks: "knows" edges
// stay inside a community (Zipf-skewed toward its hubs), "follows"
// edges cross communities. It is the host workload of the sharding
// benchmark; see PartitionFriendlyRules and BoundaryHeavyRules.
func PowerLawSocial(seed int64, communities, size int, degree, interFrac float64) (*gedlib.Graph, PowerLawStats) {
	return gen.PowerLawSocial(seed, communities, size, degree, interFrac)
}

// PartitionFriendlyRules returns rules that walk only intra-community
// "knows" edges of PowerLawSocial — the best case for WithShards.
func PartitionFriendlyRules() gedlib.RuleSet { return gen.PartitionFriendlyRules() }

// BoundaryHeavyRules returns rules that walk only inter-community
// "follows" edges of PowerLawSocial, forcing cross-shard handoffs on
// every binding — the stress case for WithShards.
func BoundaryHeavyRules() gedlib.RuleSet { return gen.BoundaryHeavyRules() }

// RandomPropertyGraph synthesizes an n-node property graph with the
// given average degree, labels, attributes and attribute domain size.
func RandomPropertyGraph(seed int64, n int, deg float64, labels []gedlib.Label, attrs []gedlib.Attr, domain int) *gedlib.Graph {
	return gen.RandomPropertyGraph(seed, n, deg, labels, attrs, domain)
}

// RandomGEDSet synthesizes count random well-formed rules over the
// given vocabulary.
func RandomGEDSet(seed int64, count, maxVars int, labels []gedlib.Label, attrs []gedlib.Attr, domain int) gedlib.RuleSet {
	return gen.RandomGEDSet(seed, count, maxVars, labels, attrs, domain)
}

// ---- hardness families (Table 1 reductions) ----

// UGraph is a simple undirected graph, the 3-colorability input of the
// hardness reductions.
type UGraph = gen.UGraph

// Complete returns K_n.
func Complete(n int) *UGraph { return gen.Complete(n) }

// Cycle returns C_n.
func Cycle(n int) *UGraph { return gen.Cycle(n) }

// Path returns P_n.
func Path(n int) *UGraph { return gen.Path(n) }

// Wheel returns W_n: C_n plus a hub.
func Wheel(n int) *UGraph { return gen.Wheel(n) }

// Petersen returns the Petersen graph.
func Petersen() *UGraph { return gen.Petersen() }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *UGraph { return gen.CompleteBipartite(a, b) }

// Mycielski returns the Mycielskian of g (raises chromatic number,
// keeps the graph triangle-free).
func Mycielski(g *UGraph) *UGraph { return gen.Mycielski(g) }

// Grotzsch returns the Grötzsch graph, the smallest triangle-free
// 4-chromatic graph.
func Grotzsch() *UGraph { return gen.Grotzsch() }

// RandomConnected returns a random connected graph on n nodes with
// extra additional edges.
func RandomConnected(rng *rand.Rand, n, extra int) *UGraph { return gen.RandomConnected(rng, n, extra) }

// SatGFDFamily reduces 3-colorability of h to GFD satisfiability
// (Theorem 3): Σ is satisfiable iff h is 3-colorable.
func SatGFDFamily(h *UGraph) gedlib.RuleSet { return gen.SatGFDFamily(h) }

// ImplGFDxFamily reduces 3-colorability of h to GFDx implication
// (Theorem 5): Σ ⊨ φ iff h is not 3-colorable.
func ImplGFDxFamily(h *UGraph) (gedlib.RuleSet, *gedlib.Rule) { return gen.ImplGFDxFamily(h) }

// ImplGKeyFamily is the GKey variant of the implication reduction.
func ImplGKeyFamily(h *UGraph) (gedlib.RuleSet, *gedlib.Rule) { return gen.ImplGKeyFamily(h) }

// ValidGFDxFamily reduces 3-colorability of h to GFDx validation.
func ValidGFDxFamily(h *UGraph) (*gedlib.Graph, gedlib.RuleSet) { return gen.ValidGFDxFamily(h) }

// ValidGKeyFamily is the GKey variant of the validation reduction.
func ValidGKeyFamily(h *UGraph) (*gedlib.Graph, gedlib.RuleSet) { return gen.ValidGKeyFamily(h) }
